// Shared harness for the paper-reproduction benchmarks: tune a method,
// run the full transform, report virtual times.
//
// All bench binaries accept:
//   --platform=umd|hopper   (default umd; some benches run both)
//   --ranks=<list>          ranks to sweep, e.g. --ranks=4,8
//   --sizes=<list>          cube sizes N (N^3 elements), e.g. --sizes=48,64
//   --evals=<n>             Nelder-Mead evaluation budget per tuning run
//   --runs=<n>              timed runs per configuration (best is kept)
//   --quick                 smaller sweep for smoke runs
// Paper-scale sizes (256..2048 at 16..256 ranks) are accepted but take
// correspondingly long on one host; the defaults keep each binary's total
// runtime in minutes while preserving the compute:communication regime of
// the paper (see EXPERIMENTS.md for the mapping).
#pragma once

#include <string>
#include <vector>

#include "core/fft_tuner.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace offt::bench {

struct MeasureResult {
  double seconds = 0.0;           // best-of-runs virtual makespan
  core::StepBreakdown breakdown;  // mean over ranks, from the best run
};

// Runs the full transform `runs` times on freshly restored inputs and
// keeps the fastest (the paper picks the best of 25 runs; we default
// lower but expose --runs).
MeasureResult run_full_fft(sim::Cluster& cluster, const core::Plan3d& plan,
                           int runs);

struct TunedMethod {
  core::Params params;
  double tuned_section_seconds = 0.0;
  double tune_wall_seconds = 0.0;      // Nelder-Mead loop (Table 4)
  double planning_wall_seconds = 0.0;  // 1-D kernel planning (§4.1)
  int evaluations = 0;
};

// Auto-tunes `method` exactly as the paper evaluates it: NEW with the ten
// parameters, TH with three, FFTW with kernel planning only (its Params
// are irrelevant — the blocking pipeline ignores them).
TunedMethod tune_method(sim::Cluster& cluster, const core::Dims& dims,
                        core::Method method, int evals, std::uint64_t seed);

// Tune + build plan + measure, the full Table 2 recipe for one cell.
struct CellResult {
  TunedMethod tuned;
  MeasureResult measured;
};
CellResult bench_cell(sim::Cluster& cluster, const core::Dims& dims,
                      core::Method method, int evals, int runs,
                      std::uint64_t seed);

// Sweep configuration shared by the table-style benches.
struct Sweep {
  std::vector<long long> ranks;
  std::vector<long long> sizes;
  int evals = 25;
  int runs = 3;
  std::vector<std::string> platforms;
};

Sweep parse_sweep(const util::Cli& cli, std::vector<long long> default_ranks,
                  std::vector<long long> default_sizes,
                  std::vector<std::string> default_platforms,
                  int default_evals = 60, int default_runs = 3);

}  // namespace offt::bench
