// Figure 8: per-step performance breakdown of NEW, NEW-0, TH and TH-0 at
// one setting (paper: p = 32, N = 640^3 on both machines; large-scale
// p = 256, N = 2048^3).
//
// Paper shape to reproduce:
//   * NEW-0's Wait is large (the exposed all-to-all) and roughly matches
//     its overlappable compute (FFTy+Pack+Unpack+FFTx);
//   * NEW shrinks Wait to near zero — near-perfect overlap;
//   * TH keeps a long Wait because Unpack+FFTx never overlap;
//   * TH's Transpose is slower (naive kernel) and its Pack/FFTx slower
//     (no loop tiling).
//
//   ./bench_fig8_breakdown [--ranks=8] [--n=96] [--platform=umd]
//                          [--evals=60] [--runs=3]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const long long n = cli.get_int("n", cli.has("quick") ? 64 : 96);
  const int evals = static_cast<int>(cli.get_int("evals", 60));
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const core::Dims dims{static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n)};

  std::vector<std::string> platforms{"umd", "hopper"};
  if (cli.has("platform")) platforms = {cli.get_string("platform", "umd")};

  for (const std::string& pname : platforms) {
    const sim::Platform platform = sim::Platform::by_name(pname);
    sim::Cluster cluster(p, platform);

    std::printf("=== Figure 8 (%s): performance breakdown, p=%d, N=%lld^3 "
                "===\n\n",
                platform.name.c_str(), p, n);

    // Tune NEW and TH once; the -0 variants reuse the tuned parameters
    // with the window/test knobs zeroed, exactly like the paper.
    const bench::TunedMethod tuned_new =
        bench::tune_method(cluster, dims, core::Method::New, evals, 11);
    const bench::TunedMethod tuned_th =
        bench::tune_method(cluster, dims, core::Method::Th, evals, 12);

    struct Variant {
      const char* name;
      core::Method method;
      core::Params params;
    };
    const std::vector<Variant> variants = {
        {"NEW", core::Method::New, tuned_new.params},
        {"NEW-0", core::Method::New0, tuned_new.params},
        {"TH", core::Method::Th, tuned_th.params},
        {"TH-0", core::Method::Th0, tuned_th.params},
    };

    util::Table table({"step", "NEW", "NEW-0", "TH", "TH-0"});
    std::vector<core::StepBreakdown> bds;
    std::vector<double> totals;
    for (const Variant& v : variants) {
      core::Plan3dOptions opts;
      opts.method = v.method;
      opts.params = v.params;
      const core::Plan3d plan(dims, p, opts);
      const bench::MeasureResult m = bench::run_full_fft(cluster, plan, runs);
      bds.push_back(m.breakdown);
      totals.push_back(m.seconds);
    }
    for (std::size_t s = 0; s < core::kStepCount; ++s) {
      std::vector<std::string> row{
          core::step_name(static_cast<core::Step>(s))};
      for (const auto& bd : bds)
        row.push_back(util::Table::num(bd.seconds[s], 5));
      table.add_row(std::move(row));
    }
    std::vector<std::string> total_row{"TOTAL"};
    for (const double t : totals)
      total_row.push_back(util::Table::num(t, 5));
    table.add_row(std::move(total_row));
    table.print(std::cout);

    const double wait_new = bds[0][core::Step::Wait];
    const double wait_new0 = bds[1][core::Step::Wait];
    const double wait_th = bds[2][core::Step::Wait];
    std::printf("\noverlap efficiency: NEW hides %.0f%% of NEW-0's wait "
                "(NEW %.5f s vs NEW-0 %.5f s); TH only reaches %.5f s\n\n",
                100.0 * (1.0 - wait_new / std::max(wait_new0, 1e-12)),
                wait_new, wait_new0, wait_th);
  }
  std::printf("(paper shape: NEW's Wait near zero; TH's Wait long; TH pays "
              "extra in Transpose)\n");
  return 0;
}
