// §5.3.1: how good is Nelder-Mead versus random search?
//
// Paper shape to reproduce: the NM result lands around the 1st percentile
// of the random-configuration distribution after ~35 tested
// configurations, whereas 35 random draws only find a 1st-percentile
// point with probability 1 - 0.99^35 ~ 30%.
//
//   ./bench_nm_vs_random [--ranks=8] [--n=64] [--configs=200] [--evals=35]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const long long n = cli.get_int("n", 64);
  const int configs =
      static_cast<int>(cli.get_int("configs", cli.has("quick") ? 60 : 200));
  const int evals = static_cast<int>(cli.get_int("evals", 35));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n)};

  std::printf("=== §5.3.1: Nelder-Mead vs random search (%d ranks, %lld^3, "
              "%s) ===\n\n",
              p, n, platform.name.c_str());

  sim::Cluster cluster(p, platform);
  const core::FftTuneSpace ts =
      core::make_tune_space(dims, p, core::Method::New);
  core::FftTuneOptions opts;
  opts.reps = 2;  // best-of-2 per evaluation suppresses host noise
  const tune::Objective obj = core::make_fft3d_objective(cluster, ts, opts);

  // Random-configuration distribution (the Fig. 5 sample).
  util::Rng rng(909);
  std::vector<double> dist;
  while (static_cast<int>(dist.size()) < configs) {
    const tune::Config c = ts.space.random_config(rng);
    if (!ts.constraint(c)) continue;
    dist.push_back(obj(c));
  }
  std::sort(dist.begin(), dist.end());

  // Nelder-Mead with the paper's initial simplex and the same budget.
  // Like the paper's methodology (five auto-tuning runs per setting), run
  // the search a few times — measurement noise perturbs the descent — and
  // keep the best result; per-attempt percentiles are reported too.
  tune::SearchResult res;
  for (int attempt = 0; attempt < 3; ++attempt) {
    tune::NelderMeadOptions nmopts;
    nmopts.max_evaluations = evals;
    tune::NelderMead nm(ts.space, obj, ts.constraint, nmopts);
    nm.set_initial_simplex(ts.initial_simplex);
    const tune::SearchResult r = nm.run();
    std::printf("nm attempt %d: best %.5f s after %d evaluations "
                "(%.1f-th percentile)\n",
                attempt + 1, r.best_value, r.evaluations,
                100.0 * util::cdf_at(dist, r.best_value));
    if (attempt == 0 || r.best_value < res.best_value) res = r;
  }

  const double pct =
      100.0 * util::cdf_at(dist, res.best_value);
  const double p_random =
      1.0 - std::pow(1.0 - std::max(pct, 0.5) / 100.0,
                     static_cast<double>(res.evaluations));

  std::printf("random distribution over %d configs: best %.5f s, median "
              "%.5f s, worst %.5f s\n",
              configs, dist.front(), util::percentile(dist, 50),
              dist.back());
  std::printf("nelder-mead: best %.5f s after %d evaluations (+%d cache "
              "hits, %d penalized)\n",
              res.best_value, res.evaluations, res.cache_hits,
              res.penalized);
  std::printf("-> the NM result ranks in the %.1f-th percentile of the "
              "random distribution\n",
              pct);
  std::printf("-> probability that %d random draws beat it: ~%.0f%%\n",
              res.evaluations, 100.0 * p_random);
  std::printf("\n(paper shape: NM reaches ~1st percentile in ~35 tests; "
              "random search needs luck)\n");
  return 0;
}
