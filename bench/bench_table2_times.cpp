// Table 2 (+ the Figure 7 speedup view): parallel 3-D FFT execution time
// for FFTW vs NEW vs TH, each auto-tuned, across ranks and sizes on both
// simulated platforms.
//
// Paper shape to reproduce: NEW fastest everywhere (1.23-1.68x over FFTW
// on UMD-Cluster, 1.10-1.40x on Hopper); TH modest (<= 1.17x) and
// sometimes slower than FFTW.
//
//   ./bench_table2_times [--platform=umd|hopper] [--ranks=4,8]
//                        [--sizes=64,80,96,112] [--evals=60] [--runs=3]
//                        [--large] [--small-only] [--quick]
//
// The default run prints Table 2(a,b) (both platforms) followed by the
// Table 2(c) large-scale block; --large prints only the latter,
// --small-only skips it.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;
using bench::CellResult;

namespace {

void run_sweep(const bench::Sweep& sweep, const char* title) {
  std::printf("=== Table 2%s: parallel 3-D FFT time (virtual seconds), "
              "auto-tuned ===\n",
              title);
  std::printf("paper: FFTW/NEW/TH on UMD-Cluster & Hopper; see "
              "EXPERIMENTS.md for the size mapping\n\n");

  for (const std::string& platform_name : sweep.platforms) {
    const sim::Platform platform = sim::Platform::by_name(platform_name);
    util::Table table({"p", "N^3", "FFTW", "NEW", "TH", "NEW/FFTW",
                       "TH/FFTW"});
    for (const long long p : sweep.ranks) {
      sim::Cluster cluster(static_cast<int>(p), platform);
      for (const long long n : sweep.sizes) {
        const core::Dims dims{static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n)};
        const CellResult fftw = bench::bench_cell(
            cluster, dims, core::Method::FftwLike, sweep.evals, sweep.runs, 1);
        const CellResult nw = bench::bench_cell(
            cluster, dims, core::Method::New, sweep.evals, sweep.runs, 2);
        const CellResult th = bench::bench_cell(
            cluster, dims, core::Method::Th, sweep.evals, sweep.runs, 3);

        table.add_row({std::to_string(p), std::to_string(n) + "^3",
                       util::Table::num(fftw.measured.seconds, 4),
                       util::Table::num(nw.measured.seconds, 4),
                       util::Table::num(th.measured.seconds, 4),
                       util::Table::num(fftw.measured.seconds /
                                            nw.measured.seconds, 2) + "x",
                       util::Table::num(fftw.measured.seconds /
                                            th.measured.seconds, 2) + "x"});
        std::printf("  [%s] p=%lld N=%lld done (NEW %s)\n",
                    platform.name.c_str(), p, n,
                    nw.tuned.params.to_string().c_str());
      }
    }
    std::printf("\n--- platform: %s ---\n", platform.name.c_str());
    table.print(std::cout);
    std::printf("(last two columns are the Figure 7 speedups over FFTW)\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  const bench::Sweep small = bench::parse_sweep(
      cli, {4, 8}, {64, 80, 96, 112}, {"umd", "hopper"}, /*evals=*/60,
      /*runs=*/3);
  // Table 2(c) analogue: more ranks, bigger arrays, Hopper only; a lighter
  // evaluation budget keeps the default total runtime in minutes.
  bench::Sweep large = small;
  large.ranks = cli.get_int_list("ranks", {16, 32});
  large.sizes = cli.get_int_list("sizes", {128, 160});
  large.platforms = {cli.get_string("platform", "hopper")};
  large.evals = static_cast<int>(cli.get_int("evals", 30));
  large.runs = std::min(large.runs, 2);
  if (cli.has("quick")) {
    large.ranks = {16};
    large.sizes.resize(1);
    large.evals = 10;
  }

  if (!cli.has("large")) run_sweep(small, "(a,b)");
  if (!cli.has("small-only")) run_sweep(large, "(c) large scale");
  return 0;
}
