// Micro-benchmarks of the cluster simulator itself: real (host) cost of
// scheduling points, message posting and collective rounds.  These bound
// how much simulator overhead pollutes the virtual-time measurements.
#include <benchmark/benchmark.h>

#include <vector>

#include "sim/cluster.hpp"

namespace {

using namespace offt;

sim::NetworkModel cheap_model() {
  sim::NetworkModel m;
  m.inter = {1e-6, 1e9};
  m.intra = m.inter;
  m.injection_overhead = 0.0;
  m.test_overhead = 0.0;
  m.compute_scale = 0.0;
  return m;
}

void BM_SimAdvance(benchmark::State& state) {
  // Host cost of one scheduling point on a single-rank cluster.
  sim::Cluster cluster(1, cheap_model());
  for (auto _ : state) {
    state.PauseTiming();
    state.ResumeTiming();
    cluster.run([&](sim::Comm& comm) {
      for (int i = 0; i < 1000; ++i) comm.advance(1e-9);
    });
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimAdvance)->Unit(benchmark::kMillisecond);

void BM_SimPingPong(benchmark::State& state) {
  sim::Cluster cluster(2, cheap_model());
  for (auto _ : state) {
    cluster.run([&](sim::Comm& comm) {
      int v = 0;
      for (int i = 0; i < 100; ++i) {
        if (comm.rank() == 0) {
          comm.send(&v, sizeof(v), 1, 0);
          comm.recv(&v, sizeof(v), 1, 1);
        } else {
          comm.recv(&v, sizeof(v), 0, 0);
          comm.send(&v, sizeof(v), 0, 1);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_SimPingPong)->Unit(benchmark::kMillisecond);

void BM_SimAlltoall(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  sim::Cluster cluster(p, cheap_model());
  const std::size_t block = 1024;
  std::vector<std::vector<char>> send(static_cast<std::size_t>(p)),
      recv(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    send[static_cast<std::size_t>(r)].resize(block * static_cast<std::size_t>(p));
    recv[static_cast<std::size_t>(r)].resize(block * static_cast<std::size_t>(p));
  }
  for (auto _ : state) {
    cluster.run([&](sim::Comm& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      comm.alltoall(send[r].data(), recv[r].data(), block);
    });
  }
  state.SetItemsProcessed(state.iterations() * p * (p - 1));
}
BENCHMARK(BM_SimAlltoall)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SimTestCalls(benchmark::State& state) {
  // Host cost of the manual-progression polls the pipelines issue.
  sim::Cluster cluster(2, cheap_model());
  for (auto _ : state) {
    cluster.run([&](sim::Comm& comm) {
      int v = 0;
      sim::Request req = comm.rank() == 0
                             ? comm.irecv(&v, sizeof(v), 1, 0)
                             : comm.isend(&v, sizeof(v), 0, 0);
      for (int i = 0; i < 1000; ++i) comm.test(req);
      comm.wait(req);
    });
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SimTestCalls)->Unit(benchmark::kMillisecond);

}  // namespace
