#include "bench/bench_common.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace offt::bench {

MeasureResult run_full_fft(sim::Cluster& cluster, const core::Plan3d& plan,
                           int runs) {
  const int p = cluster.size();
  std::vector<fft::ComplexVector> pristine(static_cast<std::size_t>(p));
  std::vector<fft::ComplexVector> work(static_cast<std::size_t>(p));
  util::Rng rng(0xbe0c);
  for (int r = 0; r < p; ++r) {
    const std::size_t n = plan.local_elements(r);
    pristine[static_cast<std::size_t>(r)].resize(n);
    work[static_cast<std::size_t>(r)].resize(n);
    for (auto& v : pristine[static_cast<std::size_t>(r)])
      v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }

  MeasureResult best;
  best.seconds = 1e300;
  for (int run = 0; run < std::max(1, runs); ++run) {
    double makespan = 0.0;
    core::StepBreakdown bd_avg;
    cluster.run([&](sim::Comm& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      std::memcpy(work[r].data(), pristine[r].data(),
                  pristine[r].size() * sizeof(fft::Complex));
      comm.barrier();
      core::StepBreakdown bd;
      const double t0 = comm.now();
      plan.execute(comm, work[r].data(), &bd);
      const double dt = comm.now() - t0;
      const double m = comm.allreduce_max(dt);
      const core::StepBreakdown avg = bd.averaged(comm);
      if (comm.rank() == 0) {
        makespan = m;
        bd_avg = avg;
      }
    });
    if (makespan < best.seconds) {
      best.seconds = makespan;
      best.breakdown = bd_avg;
    }
  }
  return best;
}

TunedMethod tune_method(sim::Cluster& cluster, const core::Dims& dims,
                        core::Method method, int evals, std::uint64_t seed) {
  TunedMethod out;
  if (method == core::Method::FftwLike) {
    // The FFTW baseline has no pipeline parameters; its tuning is the
    // FFTW_PATIENT analogue (§4.1): plan the 1-D kernels at PATIENT rigor
    // and measure trial executions of the whole distributed transform,
    // the way FFTW's planner times candidate plans on the real problem.
    const double t0 = util::wall_now();
    core::Plan3dOptions opts;
    opts.method = method;
    opts.planning = fft::Planning::Patient;
    const core::Plan3d probe(dims, cluster.size(), opts);
    run_full_fft(cluster, probe, /*runs=*/6);
    out.planning_wall_seconds = util::wall_now() - t0;
    out.params = core::Params::heuristic(dims, cluster.size())
                     .resolved(dims, cluster.size());
    return out;
  }

  core::FftTuneOptions topts;
  topts.max_evaluations = evals;
  topts.seed = seed;
  topts.planning = fft::Planning::Measure;
  topts.reps = 2;  // best-of-2 per evaluation suppresses host noise
  const core::FftTuneResult res =
      core::tune_fft3d(cluster, dims, method, topts);
  out.params = res.best_params;
  out.tuned_section_seconds = res.best_seconds;
  out.tune_wall_seconds = res.outcome.wall_seconds;
  out.planning_wall_seconds = res.fft_planning_seconds;
  out.evaluations = res.outcome.search.evaluations;
  return out;
}

CellResult bench_cell(sim::Cluster& cluster, const core::Dims& dims,
                      core::Method method, int evals, int runs,
                      std::uint64_t seed) {
  CellResult cell;
  cell.tuned = tune_method(cluster, dims, method, evals, seed);
  core::Plan3dOptions opts;
  opts.method = method;
  opts.params = cell.tuned.params;
  const core::Plan3d plan(dims, cluster.size(), opts);
  cell.measured = run_full_fft(cluster, plan, runs);
  return cell;
}

Sweep parse_sweep(const util::Cli& cli, std::vector<long long> default_ranks,
                  std::vector<long long> default_sizes,
                  std::vector<std::string> default_platforms,
                  int default_evals, int default_runs) {
  Sweep s;
  if (cli.has("quick")) {
    default_ranks.resize(1);
    if (default_sizes.size() > 2) default_sizes.resize(2);
    default_evals = std::min(default_evals, 10);
    default_runs = std::min(default_runs, 2);
  }
  s.ranks = cli.get_int_list("ranks", default_ranks);
  s.sizes = cli.get_int_list("sizes", default_sizes);
  s.evals = static_cast<int>(cli.get_int("evals", default_evals));
  s.runs = static_cast<int>(cli.get_int("runs", default_runs));
  if (cli.has("platform")) {
    s.platforms = {cli.get_string("platform", "umd")};
  } else {
    s.platforms = std::move(default_platforms);
  }
  return s;
}

}  // namespace offt::bench
