// Ablation of §3.3: the MPI_Test frequency trade-off.  Sweeps a common
// value F for Fy/Fp/Fu/Fx with everything else fixed: too few tests stall
// the all-to-all rounds (long Wait), too many burn time polling (long
// Test).
//
//   ./bench_ablation_testfreq [--ranks=8] [--n=80] [--platform=umd]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const long long n = cli.get_int("n", cli.has("quick") ? 64 : 80);
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n)};

  std::printf("=== Ablation (§3.3): MPI_Test frequency, %d ranks, %lld^3, "
              "%s ===\n\n",
              p, n, platform.name.c_str());

  sim::Cluster cluster(p, platform);
  util::Table table({"F (all four)", "total (s)", "Wait (s)", "Test (s)",
                     "tests/rank"});
  for (const long long f : {0ll, 1ll, 2ll, 4ll, 8ll, 16ll, 32ll, 64ll,
                            256ll, 1024ll}) {
    core::Params prm = core::Params::heuristic(dims, p).resolved(dims, p);
    prm.Fy = prm.Fp = prm.Fu = prm.Fx = f;
    core::Plan3dOptions opts;
    opts.method = core::Method::New;
    opts.params = prm;
    const core::Plan3d plan(dims, p, opts);
    const bench::MeasureResult m = bench::run_full_fft(cluster, plan, runs);

    // Count test calls in a separate instrumented run.
    std::uint64_t tests = 0;
    std::vector<fft::ComplexVector> slabs(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      slabs[static_cast<std::size_t>(r)].resize(plan.local_elements(r));
    cluster.run([&](sim::Comm& comm) {
      plan.execute(comm, slabs[static_cast<std::size_t>(comm.rank())].data());
      if (comm.rank() == 0) tests = comm.test_calls();
    });

    table.add_row({std::to_string(f), util::Table::num(m.seconds, 5),
                   util::Table::num(m.breakdown[core::Step::Wait], 5),
                   util::Table::num(m.breakdown[core::Step::Test], 5),
                   std::to_string(tests)});
  }
  table.print(std::cout);
  std::printf("\n(expected: Wait shrinks as F grows, Test grows with F; "
              "the optimum sits between the extremes)\n");
  return 0;
}
