// Ablation of §3.4: loop tiling for Pack/Unpack.  Compares the tunable
// section with (a) no sub-tiling (whole-tile loops, TH/FFTW style),
// (b) cache-sized sub-tiles (the paper's design), and (c) degenerate 1x1
// sub-tiles, on an ideal network so only compute/cache effects show.
// The tile is sized to exceed L2 so the FFT->Pack reuse matters.
//
// Note: the magnitude of the (a) vs (b) gap depends on the host cache
// hierarchy — the paper's Xeons had 512 KB of last-level cache per core,
// where re-reading a tile was a memory round trip; hosts with hundreds of
// MB of L3 only exercise the L2 distance.  The 1x1 variant bounds the
// other side (pure loop/call overhead).
//
//   ./bench_ablation_tiling [--ranks=2] [--n=160] [--runs=5]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 2));
  const long long n = cli.get_int("n", cli.has("quick") ? 96 : 160);
  const int runs = static_cast<int>(cli.get_int("runs", 5));
  const core::Dims dims{static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n)};

  std::printf("=== Ablation (§3.4): Pack/Unpack loop tiling, %d ranks, "
              "%lld^3, ideal network ===\n",
              p, n);

  sim::Cluster cluster(p, sim::Platform::ideal());
  const long long my_s = n / p;
  const long long tile = std::min<long long>(64, n);
  std::printf("(communication tile: %lld z-planes x %lld x %lld = %.1f MB)\n\n",
              tile, my_s, n,
              static_cast<double>(tile * my_s * n * 16) / 1048576.0);

  struct Variant {
    const char* name;
    long long px, pz, uy, uz;
  };
  const core::Params heur = core::Params::heuristic(dims, p).resolved(dims, p);
  const std::vector<Variant> variants = {
      {"no tiling (whole tile)", my_s, tile, my_s, tile},
      {"cache-sized sub-tiles", heur.Px, heur.Pz, heur.Uy, heur.Uz},
      {"1x1 sub-tiles", 1, 1, 1, 1},
  };

  util::Table table({"variant", "Px", "Pz", "Uy", "Uz", "section (s)",
                     "FFTy+Pack", "Unpack+FFTx"});
  for (const Variant& v : variants) {
    core::Params prm = heur;
    prm.T = tile;
    prm.W = 0;  // isolate compute: no overlap machinery
    prm.Fy = prm.Fp = prm.Fu = prm.Fx = 0;
    prm.Px = v.px;
    prm.Pz = v.pz;
    prm.Uy = v.uy;
    prm.Uz = v.uz;
    core::Plan3dOptions opts;
    opts.method = core::Method::New0;
    opts.params = prm;
    const core::Plan3d plan(dims, p, opts);
    const bench::MeasureResult m = bench::run_full_fft(cluster, plan, runs);
    const double first = m.breakdown[core::Step::FFTy] +
                         m.breakdown[core::Step::Pack];
    const double second = m.breakdown[core::Step::Unpack] +
                          m.breakdown[core::Step::FFTx];
    table.add_row({v.name, std::to_string(plan.params().Px),
                   std::to_string(plan.params().Pz),
                   std::to_string(plan.params().Uy),
                   std::to_string(plan.params().Uz),
                   util::Table::num(m.seconds, 5),
                   util::Table::num(first, 5),
                   util::Table::num(second, 5)});
  }
  table.print(std::cout);
  std::printf("\n(expected: cache-sized sub-tiles beat 1x1 loop overhead and "
              "match or beat whole-tile passes; the margin over whole-tile "
              "scales with how far the tile spills past the cache)\n");
  return 0;
}
