// Table 4: auto-tuning time for FFTW (kernel planner only) vs NEW
// (ten-parameter Nelder-Mead) vs TH (three-parameter Nelder-Mead).
//
// Paper shape to reproduce: TH tunes fastest (3 dimensions), NEW is
// comparable to FFTW's planner; all in seconds-to-minutes.
//
//   ./bench_table4_tuning_time [--platform=umd] [--ranks=4,8]
//                              [--sizes=64,80,96,112] [--evals=60]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "fft/planner.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::Sweep sweep = bench::parse_sweep(
      cli, {4, 8}, {64, 80, 96, 112}, {"umd"}, /*evals=*/60);

  std::printf("=== Table 4: auto-tuning time (wall seconds) ===\n");
  std::printf("FFTW column: 1-D kernel planning at PATIENT rigor (cold "
              "cache);\nNEW/TH columns: the Nelder-Mead loop including "
              "every objective run.\n\n");

  for (const std::string& platform_name : sweep.platforms) {
    const sim::Platform platform = sim::Platform::by_name(platform_name);
    util::Table table({"p", "N^3", "FFTW", "NEW", "TH", "NEW evals",
                       "TH evals"});
    for (const long long p : sweep.ranks) {
      sim::Cluster cluster(static_cast<int>(p), platform);
      for (const long long n : sweep.sizes) {
        const core::Dims dims{static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n)};
        fft::clear_plan_cache();  // cold planner per cell, like a fresh job
        const bench::TunedMethod fftw = bench::tune_method(
            cluster, dims, core::Method::FftwLike, sweep.evals, 1);
        const bench::TunedMethod nw = bench::tune_method(
            cluster, dims, core::Method::New, sweep.evals, 2);
        const bench::TunedMethod th = bench::tune_method(
            cluster, dims, core::Method::Th, sweep.evals, 3);
        table.add_row({std::to_string(p), std::to_string(n) + "^3",
                       util::Table::num(fftw.planning_wall_seconds, 3),
                       util::Table::num(nw.tune_wall_seconds, 3),
                       util::Table::num(th.tune_wall_seconds, 3),
                       std::to_string(nw.evaluations),
                       std::to_string(th.evaluations)});
      }
    }
    std::printf("--- platform: %s ---\n", platform.name.c_str());
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("(paper shape: TH < NEW — fewer dimensions mean a smaller "
              "search space)\n");
  return 0;
}
