// Figure 5: cumulative distribution of the tunable-section execution time
// over random parameter configurations (paper: 200 configs, 16 ranks,
// 256^3; ~3x spread between best and worst).
//
//   ./bench_fig5_random_cdf [--ranks=8] [--n=64] [--configs=200]
//                           [--platform=umd]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const long long n = cli.get_int("n", 64);
  const int configs =
      static_cast<int>(cli.get_int("configs", cli.has("quick") ? 50 : 200));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n)};

  std::printf("=== Figure 5: CDF of the 3-D FFT time over %d random "
              "configurations ===\n",
              configs);
  std::printf("(%d ranks, %lld^3 elements, %s; FFTz and Transpose excluded "
              "as in the paper)\n\n",
              p, n, platform.name.c_str());

  sim::Cluster cluster(p, platform);
  const core::FftTuneSpace ts =
      core::make_tune_space(dims, p, core::Method::New);
  core::FftTuneOptions opts;
  const tune::Objective obj = core::make_fft3d_objective(cluster, ts, opts);

  util::Rng rng(505);
  std::vector<double> samples;
  while (static_cast<int>(samples.size()) < configs) {
    const tune::Config c = ts.space.random_config(rng);
    if (!ts.constraint(c)) continue;  // feasible configs only, as measured
    samples.push_back(obj(c));
  }

  std::sort(samples.begin(), samples.end());
  util::Table table({"cumulative fraction", "time (s)"});
  for (const double q : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                         1.0}) {
    const std::size_t idx = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    table.add_row({util::Table::num(q, 1), util::Table::num(samples[idx], 5)});
  }
  table.print(std::cout);

  const double spread = samples.back() / samples.front();
  std::printf("\nbest %.5f s, worst %.5f s -> spread %.2fx\n",
              samples.front(), samples.back(), spread);
  std::printf("(paper shape: ~3x spread between best and worst random "
              "configuration)\n");
  return 0;
}
