// Table 3: the parameter values Nelder-Mead finds for NEW per
// (platform, ranks, size).
//
// Paper shape to reproduce: values differ across settings (that is the
// point of §5.3.1) — e.g. T grows with Nz, F* grow with p, W stays small
// (2-4), and no single configuration is best everywhere.
//
//   ./bench_table3_tuned_params [--platform=umd|hopper] [--ranks=4,8]
//                               [--sizes=64,80,96,112] [--evals=60]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::Sweep sweep = bench::parse_sweep(
      cli, {4, 8}, {64, 80, 96, 112}, {"umd", "hopper"}, /*evals=*/60);

  std::printf("=== Table 3: parameter values found via auto-tuning (NEW) "
              "===\n\n");

  for (const std::string& platform_name : sweep.platforms) {
    const sim::Platform platform = sim::Platform::by_name(platform_name);
    util::Table table({"p", "N^3", "T", "W", "Px", "Pz", "Uy", "Uz", "Fy",
                       "Fp", "Fu", "Fx"});
    for (const long long p : sweep.ranks) {
      sim::Cluster cluster(static_cast<int>(p), platform);
      for (const long long n : sweep.sizes) {
        const core::Dims dims{static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n)};
        const bench::TunedMethod tuned = bench::tune_method(
            cluster, dims, core::Method::New, sweep.evals, 2);
        const core::Params& v = tuned.params;
        table.add_row({std::to_string(p), std::to_string(n) + "^3",
                       std::to_string(v.T), std::to_string(v.W),
                       std::to_string(v.Px), std::to_string(v.Pz),
                       std::to_string(v.Uy), std::to_string(v.Uz),
                       std::to_string(v.Fy), std::to_string(v.Fp),
                       std::to_string(v.Fu), std::to_string(v.Fx)});
      }
    }
    std::printf("--- platform: %s ---\n", platform.name.c_str());
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("(paper shape: tuned values vary with platform, p and N; "
              "W stays small)\n");
  return 0;
}
