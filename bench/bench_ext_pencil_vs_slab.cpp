// Extension bench (paper §2.2 / §7): 1-D (slab) vs 2-D (pencil)
// decomposition.
//
// §2.2's claim: the 2-D decomposition scales to more ranks (up to N^2)
// but pays for two all-to-all steps, so "depending on the system
// environment, 1-D decomposition can be a better choice".  This bench
// sweeps rank counts on both simulated platforms and reports where the
// crossover falls — and what the overlapped NEW slab pipeline adds on
// top of the blocking slab baseline.
//
//   ./bench_ext_pencil_vs_slab [--platform=umd] [--n=64]
//                              [--ranks=4,8,16] [--runs=3]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/pencil3d.hpp"

using namespace offt;

namespace {

// Near-square process grid for p ranks.
std::pair<int, int> grid_for(int p) {
  int rows = 1;
  for (int r = 1; r * r <= p; ++r)
    if (p % r == 0) rows = r;
  return {rows, p / rows};
}

double run_pencil(sim::Cluster& cluster, const core::Pencil3d& plan,
                  int runs) {
  const int p = cluster.size();
  std::vector<fft::ComplexVector> slabs(static_cast<std::size_t>(p));
  util::Rng rng(5);
  for (int r = 0; r < p; ++r) {
    slabs[static_cast<std::size_t>(r)].resize(plan.local_elements(r));
    for (auto& v : slabs[static_cast<std::size_t>(r)])
      v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  double best = 1e300;
  for (int run = 0; run < runs; ++run) {
    double makespan = 0;
    cluster.run([&](sim::Comm& comm) {
      comm.barrier();
      const double t0 = comm.now();
      plan.execute(comm,
                   slabs[static_cast<std::size_t>(comm.rank())].data());
      const double dt = comm.allreduce_max(comm.now() - t0);
      if (comm.rank() == 0) makespan = dt;
    });
    best = std::min(best, makespan);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const long long n = cli.get_int("n", cli.has("quick") ? 48 : 64);
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const int evals = static_cast<int>(cli.get_int("evals", 25));
  const auto ranks = cli.get_int_list(
      "ranks", cli.has("quick") ? std::vector<long long>{4, 16}
                                : std::vector<long long>{4, 8, 16, 32});
  const core::Dims dims{static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n)};

  std::vector<std::string> platforms{"umd", "hopper"};
  if (cli.has("platform")) platforms = {cli.get_string("platform", "umd")};

  std::printf("=== Extension (§2.2/§7): slab (1-D) vs pencil (2-D) "
              "decomposition, N=%lld^3 ===\n\n",
              n);

  for (const std::string& pname : platforms) {
    const sim::Platform platform = sim::Platform::by_name(pname);
    util::Table table({"p", "grid", "slab FFTW (s)", "slab NEW (s)",
                       "pencil (s)", "pencil/slabNEW"});
    for (const long long p : ranks) {
      sim::Cluster cluster(static_cast<int>(p), platform);
      const auto [rows, cols] = grid_for(static_cast<int>(p));

      // Slab methods (skip when the slab decomposition runs out of rows).
      double t_fftw = -1, t_new = -1;
      if (p <= n) {
        core::Plan3dOptions fopts;
        fopts.method = core::Method::FftwLike;
        fopts.planning = fft::Planning::Measure;
        const core::Plan3d fftw_plan(dims, static_cast<int>(p), fopts);
        t_fftw = bench::run_full_fft(cluster, fftw_plan, runs).seconds;

        const bench::TunedMethod tuned = bench::tune_method(
            cluster, dims, core::Method::New, evals, 7);
        core::Plan3dOptions nopts;
        nopts.method = core::Method::New;
        nopts.params = tuned.params;
        const core::Plan3d new_plan(dims, static_cast<int>(p), nopts);
        t_new = bench::run_full_fft(cluster, new_plan, runs).seconds;
      }

      const core::Pencil3d pencil(dims, rows, cols);
      const double t_pencil = run_pencil(cluster, pencil, runs);

      table.add_row(
          {std::to_string(p),
           std::to_string(rows) + "x" + std::to_string(cols),
           t_fftw < 0 ? "n/a" : util::Table::num(t_fftw, 4),
           t_new < 0 ? "n/a" : util::Table::num(t_new, 4),
           util::Table::num(t_pencil, 4),
           t_new < 0 ? "-" : util::Table::num(t_pencil / t_new, 2) + "x"});
    }
    std::printf("--- platform: %s ---\n", platform.name.c_str());
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("(expected: the pencil pays for its second all-to-all at "
              "small p — 1-D wins there, per §2.2 — while only the pencil "
              "keeps scaling once p approaches and passes N)\n");
  return 0;
}
