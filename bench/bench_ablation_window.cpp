// Ablation of §3.1: the window size W (communication parallelism).
// W = 0 is blocking-per-tile (NEW-0); growing W lets more tile all-to-alls
// overlap compute until the sender port saturates.
//
//   ./bench_ablation_window [--ranks=8] [--n=80] [--platform=umd]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const long long n = cli.get_int("n", cli.has("quick") ? 64 : 80);
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n)};

  std::printf("=== Ablation (§3.1): window size W, %d ranks, %lld^3, %s "
              "===\n\n",
              p, n, platform.name.c_str());

  sim::Cluster cluster(p, platform);
  util::Table table({"W", "total (s)", "Wait (s)", "Ialltoall (s)"});
  for (const long long w : {0ll, 1ll, 2ll, 3ll, 4ll, 6ll, 8ll}) {
    core::Params prm = core::Params::heuristic(dims, p).resolved(dims, p);
    prm.W = w;
    core::Plan3dOptions opts;
    opts.method = w == 0 ? core::Method::New0 : core::Method::New;
    opts.params = prm;
    const core::Plan3d plan(dims, p, opts);
    const bench::MeasureResult m = bench::run_full_fft(cluster, plan, runs);
    table.add_row({std::to_string(w), util::Table::num(m.seconds, 5),
                   util::Table::num(m.breakdown[core::Step::Wait], 5),
                   util::Table::num(m.breakdown[core::Step::Ialltoall], 5)});
  }
  table.print(std::cout);
  std::printf("\n(expected: the big win is W=0 -> W=1..2; returns diminish "
              "once the port is busy full-time — the paper tunes W to 2-4)\n");
  return 0;
}
