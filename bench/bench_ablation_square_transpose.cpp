// Ablation of §3.5: the Nx == Ny fast transpose (x-z-y layout) versus the
// generic z-x-y rearrangement, isolated on an ideal network.
//
//   ./bench_ablation_square_transpose [--ranks=4] [--sizes=48,64,96]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 4));
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  std::vector<long long> sizes = cli.get_int_list(
      "sizes", cli.has("quick") ? std::vector<long long>{48}
                                : std::vector<long long>{48, 64, 96});

  std::printf("=== Ablation (§3.5): Nx == Ny fast transpose, %d ranks, "
              "ideal network ===\n\n",
              p);

  sim::Cluster cluster(p, sim::Platform::ideal());
  util::Table table({"N^3", "generic z-x-y (s)", "fast x-z-y (s)",
                     "Transpose generic", "Transpose fast", "speedup"});
  for (const long long n : sizes) {
    const core::Dims dims{static_cast<std::size_t>(n),
                          static_cast<std::size_t>(n),
                          static_cast<std::size_t>(n)};
    auto measure = [&](core::Plan3dOptions::SquarePath sq) {
      core::Plan3dOptions opts;
      opts.method = core::Method::New;
      opts.square_path = sq;
      const core::Plan3d plan(dims, p, opts);
      return bench::run_full_fft(cluster, plan, runs);
    };
    const bench::MeasureResult generic =
        measure(core::Plan3dOptions::SquarePath::Off);
    const bench::MeasureResult fast =
        measure(core::Plan3dOptions::SquarePath::Auto);
    table.add_row({std::to_string(n) + "^3",
                   util::Table::num(generic.seconds, 5),
                   util::Table::num(fast.seconds, 5),
                   util::Table::num(generic.breakdown[core::Step::Transpose], 5),
                   util::Table::num(fast.breakdown[core::Step::Transpose], 5),
                   util::Table::num(generic.seconds / fast.seconds, 2) + "x"});
  }
  table.print(std::cout);
  std::printf("\n(expected: the Transpose step itself is noticeably faster "
              "on the x-z-y fast path — per-slab transposes have better "
              "locality than one global rearrangement; the end-to-end "
              "effect scales with the Transpose share of the total)\n");
  return 0;
}
