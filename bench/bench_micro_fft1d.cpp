// Micro-benchmarks of the serial FFT substrate (google-benchmark): 1-D
// kernels across lengths and radix mixes, batched pencils, and planner
// rigor levels.
#include <benchmark/benchmark.h>

#include "fft/plan1d.hpp"
#include "fft/planner.hpp"
#include "util/rng.hpp"

namespace {

using namespace offt;

fft::ComplexVector random_signal(std::size_t n) {
  util::Rng rng(n);
  fft::ComplexVector v(n);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

void BM_Fft1d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fft::Plan1d plan(n, fft::Direction::Forward);
  fft::ComplexVector data = random_signal(n);
  for (auto _ : state) {
    plan.execute_inplace(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
// Pure powers of two, mixed radices (the paper's 384 = 2^7*3 and
// 640 = 2^7*5 family), and a Bluestein prime.
BENCHMARK(BM_Fft1d)->Arg(64)->Arg(128)->Arg(256)->Arg(96)->Arg(384)
    ->Arg(160)->Arg(640)->Arg(125)->Arg(127);

void BM_Fft1dBatched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  const fft::Plan1d plan(n, fft::Direction::Forward);
  fft::ComplexVector data = random_signal(n * count);
  for (auto _ : state) {
    plan.execute_many_inplace(data.data(), static_cast<std::ptrdiff_t>(n),
                              count);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count));
}
BENCHMARK(BM_Fft1dBatched)->Args({128, 64})->Args({256, 64})->Args({96, 128});

void BM_Fft1dRadixOrder(benchmark::State& state) {
  // Same length, different decompositions — the choice the planner makes.
  const std::size_t n = 256;
  const std::vector<std::vector<std::size_t>> prefs = {
      {4, 2}, {2}, {8, 4, 2}, {16, 8, 4, 2}};
  const auto which = static_cast<std::size_t>(state.range(0));
  const fft::Plan1d plan(n, fft::Direction::Forward, {prefs[which]});
  fft::ComplexVector data = random_signal(n);
  for (auto _ : state) {
    plan.execute_inplace(data.data());
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft1dRadixOrder)->DenseRange(0, 3);

void BM_PlannerRigor(benchmark::State& state) {
  const auto rigor = static_cast<fft::Planning>(state.range(0));
  for (auto _ : state) {
    fft::clear_plan_cache();
    auto plan = fft::plan_best_1d(192, fft::Direction::Forward, rigor);
    benchmark::DoNotOptimize(plan.get());
  }
}
BENCHMARK(BM_PlannerRigor)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace
