// Ablation of §3.1: the tile size T.  Small tiles give fine-grained
// overlap but many small messages (per-message latency and injection
// overhead dominate); large tiles amortize messaging but leave little to
// overlap.
//
//   ./bench_ablation_tilesize [--ranks=8] [--n=80] [--platform=umd]
#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const long long n = cli.get_int("n", cli.has("quick") ? 64 : 80);
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n)};

  std::printf("=== Ablation (§3.1): tile size T, %d ranks, %lld^3, %s "
              "===\n\n",
              p, n, platform.name.c_str());

  sim::Cluster cluster(p, platform);
  util::Table table({"T", "tiles", "total (s)", "Wait (s)",
                     "Ialltoall (s)"});
  for (long long t = 1; t <= n; t *= 2) {
    core::Params prm = core::Params::heuristic(dims, p).resolved(dims, p);
    prm.T = t;
    prm.Pz = std::min(prm.Pz, t);
    prm.Uz = std::min(prm.Uz, t);
    core::Plan3dOptions opts;
    opts.method = core::Method::New;
    opts.params = prm;
    const core::Plan3d plan(dims, p, opts);
    const bench::MeasureResult m = bench::run_full_fft(cluster, plan, runs);
    table.add_row({std::to_string(t),
                   std::to_string((n + t - 1) / t),
                   util::Table::num(m.seconds, 5),
                   util::Table::num(m.breakdown[core::Step::Wait], 5),
                   util::Table::num(m.breakdown[core::Step::Ialltoall], 5)});
  }
  table.print(std::cout);
  std::printf("\n(expected: a U-shape — tiny T pays per-message overheads, "
              "T = Nz degenerates to one blocking exchange)\n");
  return 0;
}
