// Micro-benchmarks of the local transpose kernels: naive vs cache-blocked
// (the difference Fig. 8 attributes to TH's simpler transpose), and the
// §3.5 per-slab x-z-y rearrangement vs the global z-x-y one.
#include <benchmark/benchmark.h>

#include "fft/transpose.hpp"
#include "util/rng.hpp"

namespace {

using namespace offt;

fft::ComplexVector random_data(std::size_t n) {
  util::Rng rng(n);
  fft::ComplexVector v(n);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

void BM_Transpose2dNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fft::ComplexVector in = random_data(n * n);
  fft::ComplexVector out(n * n);
  for (auto _ : state) {
    fft::transpose_2d_naive(in.data(), n, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * sizeof(fft::Complex)));
}
BENCHMARK(BM_Transpose2dNaive)->Arg(128)->Arg(512)->Arg(1024);

void BM_Transpose2dBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fft::ComplexVector in = random_data(n * n);
  fft::ComplexVector out(n * n);
  for (auto _ : state) {
    fft::transpose_2d_blocked(in.data(), n, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * sizeof(fft::Complex)));
}
BENCHMARK(BM_Transpose2dBlocked)->Arg(128)->Arg(512)->Arg(1024);

void BM_PermuteZxy(benchmark::State& state) {
  // The generic pre-exchange rearrangement on one rank's slab.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t my_x = n / 4;
  const fft::ComplexVector in = random_data(my_x * n * n);
  fft::ComplexVector out(my_x * n * n);
  for (auto _ : state) {
    fft::permute_xyz_to_zxy(in.data(), my_x, n, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PermuteZxy)->Arg(64)->Arg(96)->Arg(128);

void BM_PermuteXzyFastPath(benchmark::State& state) {
  // The §3.5 square fast path on the same slab.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t my_x = n / 4;
  const fft::ComplexVector in = random_data(my_x * n * n);
  fft::ComplexVector out(my_x * n * n);
  for (auto _ : state) {
    fft::permute_xyz_to_xzy(in.data(), my_x, n, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PermuteXzyFastPath)->Arg(64)->Arg(96)->Arg(128);

}  // namespace
