// Figure 9: cross-platform test — run each platform with the parameter
// configuration tuned for the *other* platform (CROSS) and compare
// against the natively tuned configuration (NEW).
//
// Paper shape to reproduce: NEW >= CROSS everywhere (natively tuned wins,
// by ~10% on UMD-Cluster and up to ~20% on Hopper at p=32, 512^3).
//
//   ./bench_fig9_cross_platform [--ranks=8,16] [--sizes=64,96,112]
//                               [--evals=60] [--runs=3]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::Sweep sweep = bench::parse_sweep(
      cli, {8, 16}, {64, 96, 112}, {"umd", "hopper"},
      /*default_evals=*/60, /*default_runs=*/7);

  std::printf("=== Figure 9: cross-platform test (NEW = native tuning, "
              "CROSS = other platform's tuning) ===\n\n");

  const sim::Platform umd = sim::Platform::umd_cluster();
  const sim::Platform hopper = sim::Platform::hopper();

  // Tune on both platforms for every setting.
  std::map<std::pair<long long, long long>,
           std::pair<core::Params, core::Params>>
      tuned;  // (p, n) -> (umd params, hopper params)
  for (const long long p : sweep.ranks) {
    sim::Cluster cu(static_cast<int>(p), umd);
    sim::Cluster ch(static_cast<int>(p), hopper);
    for (const long long n : sweep.sizes) {
      const core::Dims dims{static_cast<std::size_t>(n),
                            static_cast<std::size_t>(n),
                            static_cast<std::size_t>(n)};
      // The paper runs five auto-tunings per setting and keeps the best;
      // we use three attempts per platform, selected by a measured run on
      // the tuning platform itself.
      auto best_tuned = [&](sim::Cluster& cluster,
                            std::uint64_t seed_base) {
        core::Params best;
        double best_t = 1e300;
        for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
          const core::Params cand =
              bench::tune_method(cluster, dims, core::Method::New,
                                 sweep.evals, seed_base + attempt)
                  .params;
          core::Plan3dOptions opts;
          opts.method = core::Method::New;
          opts.params = cand;
          const core::Plan3d plan(dims, static_cast<int>(p), opts);
          const double t =
              bench::run_full_fft(cluster, plan, sweep.runs).seconds;
          if (t < best_t) {
            best_t = t;
            best = cand;
          }
        }
        return best;
      };
      const core::Params pu = best_tuned(cu, 21);
      const core::Params ph = best_tuned(ch, 121);
      tuned[{p, n}] = {pu, ph};
      std::printf("  tuned p=%lld N=%lld: umd %s | hopper %s\n", p, n,
                  pu.to_string().c_str(), ph.to_string().c_str());
    }
  }
  std::printf("\n");

  for (const bool on_umd : {true, false}) {
    const sim::Platform& platform = on_umd ? umd : hopper;
    util::Table table({"p", "N^3", "NEW (native)", "CROSS (other)",
                       "NEW/CROSS"});
    double geomean_log = 0.0;
    int cells = 0;
    for (const long long p : sweep.ranks) {
      sim::Cluster cluster(static_cast<int>(p), platform);
      for (const long long n : sweep.sizes) {
        const core::Dims dims{static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n)};
        const auto& [pu, ph] = tuned[{p, n}];
        const core::Params& native = on_umd ? pu : ph;
        const core::Params& cross = on_umd ? ph : pu;

        auto measure = [&](const core::Params& prm) {
          core::Plan3dOptions opts;
          opts.method = core::Method::New;
          opts.params = prm;
          const core::Plan3d plan(dims, static_cast<int>(p), opts);
          return bench::run_full_fft(cluster, plan, sweep.runs).seconds;
        };
        const double t_native = measure(native);
        const double t_cross = measure(cross);
        geomean_log += std::log(t_cross / t_native);
        ++cells;
        table.add_row({std::to_string(p), std::to_string(n) + "^3",
                       util::Table::num(t_native, 4),
                       util::Table::num(t_cross, 4),
                       util::Table::num(t_cross / t_native, 2) + "x"});
      }
    }
    std::printf("--- running on: %s ---\n", platform.name.c_str());
    table.print(std::cout);
    std::printf("geometric-mean cross-platform penalty on %s: %.2fx\n\n",
                platform.name.c_str(),
                std::exp(geomean_log / std::max(cells, 1)));
  }
  std::printf("(paper shape: natively tuned parameters win — by ~10%% on "
              "UMD-Cluster and ~20%% on Hopper at the paper's scale.  At "
              "this scaled-down setting the penalty shows most clearly on "
              "the latency-bound UMD fabric; on the fast Hopper fabric the "
              "parameter landscape is flatter and individual cells can "
              "fall within measurement noise — see EXPERIMENTS.md.)\n");
  return 0;
}
