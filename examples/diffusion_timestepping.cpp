// Time-stepping spectral solver for the 3-D heat equation — the
// "successive 3-D FFT operations on a single array" pattern the paper's
// introduction identifies as the reason intra-array overlap matters
// (scientific simulations transform the same field every step).
//
//   u_t = nu * laplacian(u)  on the periodic unit cube
//
// Exact exponential integrator in Fourier space: each step multiplies
// every mode by exp(-nu*|k|^2*dt).  The example runs `steps` forward +
// backward transform pairs on one distributed array, compares the final
// field against the closed-form decay of the initial modes, and reports
// how much virtual time the overlapped NEW pipeline saves versus the
// blocking FFTW-style baseline over the whole run.
//
//   ./diffusion_timestepping [--ranks=8] [--n=64] [--steps=8] [--nu=0.01]
//                            [--platform=umd]
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/fft_tuner.hpp"
#include "core/plan3d.hpp"
#include "util/cli.hpp"

using namespace offt;

namespace {

struct Mode {
  double amp;
  long long kx, ky, kz;
};

// Initial condition: a handful of real cosine modes.
const Mode kModes[] = {
    {1.00, 1, 0, 0}, {0.70, 0, 2, 1}, {0.40, 3, 1, 0}, {0.25, 2, 2, 2}};

double initial(double x, double y, double z) {
  const double two_pi = 2.0 * std::numbers::pi;
  double u = 0;
  for (const Mode& m : kModes)
    u += m.amp * std::cos(two_pi * (m.kx * x + m.ky * y + m.kz * z));
  return u;
}

double exact(double x, double y, double z, double nu, double t) {
  const double two_pi = 2.0 * std::numbers::pi;
  double u = 0;
  for (const Mode& m : kModes) {
    const double k2 = two_pi * two_pi *
                      static_cast<double>(m.kx * m.kx + m.ky * m.ky +
                                          m.kz * m.kz);
    u += m.amp * std::exp(-nu * k2 * t) *
         std::cos(two_pi * (m.kx * x + m.ky * y + m.kz * z));
  }
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 64));
  const int steps = static_cast<int>(cli.get_int("steps", 8));
  const double nu = cli.get_double("nu", 0.01);
  const double dt = cli.get_double("dt", 0.05);
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{n, n, n};
  const double two_pi = 2.0 * std::numbers::pi;
  const double h = 1.0 / static_cast<double>(n);

  std::printf("spectral heat equation: %zu^3 grid, %d steps of dt=%.3f, "
              "nu=%.3f, %d ranks on %s\n",
              n, steps, dt, nu, p, platform.name.c_str());

  auto wavenumber = [&](std::size_t m) {
    const auto s = static_cast<long long>(m);
    return static_cast<double>(
        s <= static_cast<long long>(n) / 2 ? s : s - static_cast<long long>(n));
  };

  // NEW without tuned parameters is not the paper's method: auto-tune the
  // ten parameters once up front (they are reused by every step and by
  // the backward plan).
  core::Params tuned_params;
  {
    sim::Cluster cluster(p, platform);
    core::FftTuneOptions topts;
    topts.max_evaluations = static_cast<int>(cli.get_int("evals", 40));
    const core::FftTuneResult tuned =
        core::tune_fft3d(cluster, dims, core::Method::New, topts);
    tuned_params = tuned.best_params;
    std::printf("  tuned NEW parameters: %s\n",
                tuned_params.to_string().c_str());
  }

  // Integrates `steps` steps with the given method, leaving the final
  // real-space field in `field` and the virtual makespan in the result.
  auto integrate = [&](core::Method method, core::DistributedField& field) {
    core::Plan3dOptions fo;
    fo.method = method;
    if (method == core::Method::New) fo.params = tuned_params;
    const core::Plan3d fwd(dims, p, fo);
    core::Plan3dOptions bo = fo;
    bo.direction = fft::Direction::Backward;
    const core::Plan3d bwd(dims, p, bo);

    field.fill_input([&](std::size_t i, std::size_t j, std::size_t k) {
      return fft::Complex{initial(h * i, h * j, h * k), 0.0};
    });
    const core::OutputLayout layout = fwd.output_layout();
    const core::Decomp& ydec = fwd.y_decomp();

    double makespan = 0.0;
    sim::Cluster cluster(p, platform);
    cluster.run([&](sim::Comm& comm) {
      const int r = comm.rank();
      fft::Complex* slab = field.slab(r);
      const double t0 = comm.now();
      for (int step = 0; step < steps; ++step) {
        fwd.execute(comm, slab);
        const std::size_t yc = ydec.count(r), y0 = ydec.offset(r);
        const double inv_n3 = 1.0 / static_cast<double>(dims.total());
        for (std::size_t jl = 0; jl < yc; ++jl)
          for (std::size_t k = 0; k < n; ++k)
            for (std::size_t i = 0; i < n; ++i) {
              const double kx = two_pi * wavenumber(i);
              const double ky = two_pi * wavenumber(y0 + jl);
              const double kz = two_pi * wavenumber(k);
              const double decay =
                  std::exp(-nu * (kx * kx + ky * ky + kz * kz) * dt);
              const std::size_t idx = layout == core::OutputLayout::ZYX
                                          ? (k * yc + jl) * n + i
                                          : (jl * n + k) * n + i;
              slab[idx] *= decay * inv_n3;
            }
        bwd.execute(comm, slab);
      }
      const double elapsed = comm.allreduce_max(comm.now() - t0);
      if (r == 0) makespan = elapsed;
    });
    return makespan;
  };

  core::DistributedField baseline_field(dims, p), new_field(dims, p);
  const double t_fftw = integrate(core::Method::FftwLike, baseline_field);
  const double t_new = integrate(core::Method::New, new_field);

  const double t_final = dt * steps;
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        max_err = std::max(
            max_err, std::abs(new_field.input_at(i, j, k).real() -
                              exact(h * i, h * j, h * k, nu, t_final)));

  std::printf("  %d steps (%d transforms): NEW %.4f s vs FFTW-baseline "
              "%.4f s virtual -> %.2fx over the whole run\n",
              steps, 2 * steps, t_new, t_fftw, t_fftw / t_new);
  std::printf("  max |u - u_exact| at t=%.2f: %.3e\n", t_final, max_err);
  const bool ok = max_err < 1e-9 && t_new > 0;
  std::printf("  %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
