// Particle-mesh gravity step — the astrophysical N-body motivation the
// paper cites (Ishiyama et al.'s simulations run successive 3-D FFTs on a
// single array, which is exactly the "intra-array overlap" case NEW
// targets).
//
// Pipeline: cloud-in-cell (CIC) deposit of particles onto the mesh ->
// forward 3-D FFT -> multiply by the Green's function -1/|k|^2 ->
// backward 3-D FFT -> potential at the particles.  Validated against a
// direct O(P^2) Ewald-free periodic-image sum surrogate: instead we check
// the mesh potential solves the discrete Poisson equation the spectral
// method defines (residual of laplacian_spectral(phi) vs density).
//
//   ./particle_mesh [--ranks=8] [--n=32] [--particles=512]
#include <array>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/plan3d.hpp"
#include "fft/reference.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 32));
  const std::size_t nparticles =
      static_cast<std::size_t>(cli.get_int("particles", 512));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{n, n, n};
  const double two_pi = 2.0 * std::numbers::pi;

  std::printf("particle-mesh gravity: %zu^3 mesh, %zu particles, %d ranks\n",
              n, nparticles, p);

  // Random particle positions in the unit box, unit masses.
  util::Rng rng(2026);
  std::vector<std::array<double, 3>> pos(nparticles);
  for (auto& q : pos) q = {rng.next_double(), rng.next_double(),
                           rng.next_double()};

  // CIC deposit onto a full mesh (density contrast, mean removed later by
  // zeroing the DC mode).
  fft::ComplexVector density(dims.total(), fft::Complex{0, 0});
  const double dn = static_cast<double>(n);
  for (const auto& q : pos) {
    const double gx = q[0] * dn, gy = q[1] * dn, gz = q[2] * dn;
    const std::size_t i0 = static_cast<std::size_t>(gx) % n;
    const std::size_t j0 = static_cast<std::size_t>(gy) % n;
    const std::size_t k0 = static_cast<std::size_t>(gz) % n;
    const double fx = gx - std::floor(gx), fy = gy - std::floor(gy),
                 fz = gz - std::floor(gz);
    for (int di = 0; di < 2; ++di)
      for (int dj = 0; dj < 2; ++dj)
        for (int dk = 0; dk < 2; ++dk) {
          const std::size_t i = (i0 + static_cast<std::size_t>(di)) % n;
          const std::size_t j = (j0 + static_cast<std::size_t>(dj)) % n;
          const std::size_t k = (k0 + static_cast<std::size_t>(dk)) % n;
          const double w = (di ? fx : 1 - fx) * (dj ? fy : 1 - fy) *
                           (dk ? fz : 1 - fz);
          density[(i * n + j) * n + k] += w;
        }
  }

  core::DistributedField field(dims, p);
  field.scatter_input(density.data());

  core::Plan3dOptions opts;
  opts.method = core::Method::New;
  const core::Plan3d fwd(dims, p, opts);
  core::Plan3dOptions bopts = opts;
  bopts.direction = fft::Direction::Backward;
  const core::Plan3d bwd(dims, p, bopts);

  auto wavenumber = [&](std::size_t m) {
    const auto s = static_cast<long long>(m);
    const auto nn = static_cast<long long>(n);
    return static_cast<double>(s <= nn / 2 ? s : s - nn);
  };

  const core::OutputLayout layout = fwd.output_layout();
  const core::Decomp& ydec = fwd.y_decomp();
  double elapsed = 0.0;

  sim::Cluster cluster(p, platform);
  cluster.run([&](sim::Comm& comm) {
    const int r = comm.rank();
    fft::Complex* slab = field.slab(r);
    const double t0 = comm.now();
    fwd.execute(comm, slab);

    const std::size_t yc = ydec.count(r), y0 = ydec.offset(r);
    const double inv_n3 = 1.0 / static_cast<double>(dims.total());
    for (std::size_t jl = 0; jl < yc; ++jl)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = 0; i < n; ++i) {
          const double kx = two_pi * wavenumber(i);
          const double ky = two_pi * wavenumber(y0 + jl);
          const double kz = two_pi * wavenumber(k);
          const double k2 = kx * kx + ky * ky + kz * kz;
          const std::size_t idx = layout == core::OutputLayout::ZYX
                                      ? (k * yc + jl) * n + i
                                      : (jl * n + k) * n + i;
          slab[idx] *= (k2 == 0.0 ? 0.0 : -1.0 / k2) * inv_n3;
        }

    bwd.execute(comm, slab);
    const double dt = comm.allreduce_max(comm.now() - t0);
    if (r == 0) elapsed = dt;
  });

  // Gather the potential and verify it satisfies the spectral Poisson
  // equation: second-order periodic finite differences of phi should
  // reproduce the (smooth part of the) deposited density.  We check the
  // exact spectral identity instead: FFT(phi) * (-k^2) == FFT(rho) for
  // k != 0, evaluated back in real space via Parseval on the residual of
  // a recomputed forward transform.
  fft::ComplexVector phi(dims.total());
  field.gather_input(phi.data());

  // Recompute rho_hat and phi_hat serially and measure the identity.
  fft::ComplexVector rho_hat = density;
  fft::fft3d_serial(rho_hat.data(), n, n, n, fft::Direction::Forward);
  fft::ComplexVector phi_hat = phi;
  fft::fft3d_serial(phi_hat.data(), n, n, n, fft::Direction::Forward);

  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k) {
        const double kx = two_pi * wavenumber(i);
        const double ky = two_pi * wavenumber(j);
        const double kz = two_pi * wavenumber(k);
        const double k2 = kx * kx + ky * ky + kz * kz;
        if (k2 == 0.0) continue;
        const std::size_t idx = (i * n + j) * n + k;
        num += std::norm(phi_hat[idx] * (-k2) - rho_hat[idx]);
        den += std::norm(rho_hat[idx]);
      }
  const double rel = std::sqrt(num / den);

  // Report the potential at the first few particles (nearest grid point).
  std::printf("  FFT pair time: %.6f virtual s on %s\n", elapsed,
              platform.name.c_str());
  for (std::size_t q = 0; q < std::min<std::size_t>(3, nparticles); ++q) {
    const std::size_t i = static_cast<std::size_t>(pos[q][0] * dn) % n;
    const std::size_t j = static_cast<std::size_t>(pos[q][1] * dn) % n;
    const std::size_t k = static_cast<std::size_t>(pos[q][2] * dn) % n;
    std::printf("  particle %zu at (%.3f, %.3f, %.3f): phi = %.6f\n", q,
                pos[q][0], pos[q][1], pos[q][2],
                phi[(i * n + j) * n + k].real());
  }
  std::printf("  spectral Poisson residual (rel.): %.3e\n", rel);
  const bool ok = rel < 1e-9;
  std::printf("  %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
