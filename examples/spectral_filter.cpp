// 3-D spectral low-pass filter — the signal/image-processing use case
// from the paper's introduction.  A smooth field is corrupted with
// high-frequency noise, transformed, multiplied by a Gaussian transfer
// function, and transformed back; the example reports the error to the
// clean field before and after filtering.
//
//   ./spectral_filter [--ranks=8] [--n=40] [--sigma=4.0]
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/plan3d.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 40));
  const double sigma = cli.get_double("sigma", 4.0);
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "hopper"));
  const core::Dims dims{n, n, n};
  const double two_pi = 2.0 * std::numbers::pi;

  std::printf("spectral Gaussian filter: %zu^3 field, sigma = %.1f modes, "
              "%d ranks on %s\n",
              n, sigma, p, platform.name.c_str());

  // Clean field: a few low-frequency modes.  Noise: white, amplitude 0.5.
  auto clean = [&](std::size_t i, std::size_t j, std::size_t k) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    const double y = static_cast<double>(j) / static_cast<double>(n);
    const double z = static_cast<double>(k) / static_cast<double>(n);
    return std::sin(two_pi * x) * std::cos(two_pi * 2 * y) +
           0.5 * std::cos(two_pi * 3 * z);
  };

  util::Rng rng(7);
  fft::ComplexVector noisy(dims.total());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        noisy[(i * n + j) * n + k] = {clean(i, j, k) + rng.uniform(-0.5, 0.5),
                                      0.0};

  core::DistributedField field(dims, p);
  field.scatter_input(noisy.data());

  core::Plan3dOptions opts;
  opts.method = core::Method::New;
  const core::Plan3d fwd(dims, p, opts);
  core::Plan3dOptions bopts = opts;
  bopts.direction = fft::Direction::Backward;
  const core::Plan3d bwd(dims, p, bopts);

  auto wavenumber = [&](std::size_t m) {
    const auto s = static_cast<long long>(m);
    const auto nn = static_cast<long long>(n);
    return static_cast<double>(s <= nn / 2 ? s : s - nn);
  };

  const core::OutputLayout layout = fwd.output_layout();
  const core::Decomp& ydec = fwd.y_decomp();

  sim::Cluster cluster(p, platform);
  cluster.run([&](sim::Comm& comm) {
    const int r = comm.rank();
    fft::Complex* slab = field.slab(r);
    fwd.execute(comm, slab);

    const std::size_t yc = ydec.count(r), y0 = ydec.offset(r);
    const double inv_n3 = 1.0 / static_cast<double>(dims.total());
    for (std::size_t jl = 0; jl < yc; ++jl)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = 0; i < n; ++i) {
          const double ki = wavenumber(i), kj = wavenumber(y0 + jl),
                       kk = wavenumber(k);
          const double k2 = ki * ki + kj * kj + kk * kk;
          const double transfer = std::exp(-k2 / (2.0 * sigma * sigma));
          const std::size_t idx = layout == core::OutputLayout::ZYX
                                      ? (k * yc + jl) * n + i
                                      : (jl * n + k) * n + i;
          slab[idx] *= transfer * inv_n3;
        }

    bwd.execute(comm, slab);
  });

  fft::ComplexVector filtered(dims.total());
  field.gather_input(filtered.data());

  double err_noisy = 0.0, err_filtered = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k) {
        const double c = clean(i, j, k);
        const std::size_t idx = (i * n + j) * n + k;
        err_noisy += std::norm(noisy[idx] - fft::Complex{c, 0});
        err_filtered += std::norm(filtered[idx] - fft::Complex{c, 0});
      }
  err_noisy = std::sqrt(err_noisy / static_cast<double>(dims.total()));
  err_filtered = std::sqrt(err_filtered / static_cast<double>(dims.total()));

  std::printf("  rms error vs clean field: %.4f (noisy) -> %.4f (filtered)\n",
              err_noisy, err_filtered);
  const bool ok = err_filtered < 0.5 * err_noisy;
  std::printf("  noise reduced %.1fx — %s\n", err_noisy / err_filtered,
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
