// Auto-tuning walkthrough (the paper's §4): tunes the ten parameters of
// the NEW pipeline with Nelder-Mead on the simulated cluster and compares
// the tuned configuration against the §4.4 heuristic default and a few
// random configurations.
//
//   ./autotune_demo [--ranks=8] [--n=48] [--platform=umd] [--evals=30]
#include <cstdio>

#include "core/fft_tuner.hpp"
#include "tune/random_search.hpp"
#include "util/cli.hpp"

using namespace offt;

namespace {

double measure(sim::Cluster& cluster, const core::FftTuneSpace& ts,
               const core::FftTuneOptions& opts, const core::Params& params) {
  const tune::Objective obj = core::make_fft3d_objective(cluster, ts, opts);
  return obj(ts.to_config(params));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 48));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const int evals = static_cast<int>(cli.get_int("evals", 30));
  const core::Dims dims{n, n, n};

  std::printf("auto-tuning NEW: %zu^3, %d ranks, %s, budget %d evaluations\n",
              n, p, platform.name.c_str(), evals);

  sim::Cluster cluster(p, platform);
  const core::FftTuneSpace ts = core::make_tune_space(dims, p,
                                                      core::Method::New);
  std::printf("  reduced search space: %.0f configurations in %zu"
              " dimensions\n",
              ts.space.total_configs(), ts.space.dims());

  core::FftTuneOptions opts;
  opts.max_evaluations = evals;

  // Baseline: the heuristic default point (§4.4).
  const core::Params heuristic =
      core::Params::heuristic(dims, p).resolved(dims, p);
  const double t_heuristic = measure(cluster, ts, opts, heuristic);
  std::printf("\n  heuristic default  %-60s %.6f s\n",
              heuristic.to_string().c_str(), t_heuristic);

  // A few random configurations, to show the spread the tuner navigates.
  util::Rng rng(1);
  double t_rand_best = 1e30, t_rand_worst = 0.0;
  for (int s = 0; s < 8; ++s) {
    tune::Config c = ts.space.random_config(rng);
    if (!ts.constraint(c)) continue;
    const double t = measure(cluster, ts, opts, ts.to_params(c).resolved(dims, p));
    t_rand_best = std::min(t_rand_best, t);
    t_rand_worst = std::max(t_rand_worst, t);
  }
  std::printf("  random configs     best %.6f s / worst %.6f s\n",
              t_rand_best, t_rand_worst);

  // The Nelder-Mead search itself.
  const core::FftTuneResult res =
      core::tune_fft3d(cluster, dims, core::Method::New, opts);
  std::printf("  nelder-mead tuned  %-60s %.6f s\n",
              res.best_params.to_string().c_str(), res.best_seconds);
  std::printf("\n  search: %d evaluations, %d cache hits, %d penalized, "
              "%.2f s wall tuning time (+%.2f s kernel planning)\n",
              res.outcome.search.evaluations, res.outcome.search.cache_hits,
              res.outcome.search.penalized, res.outcome.wall_seconds,
              res.fft_planning_seconds);

  const double speedup = t_heuristic / res.best_seconds;
  std::printf("  tuned vs heuristic: %.2fx\n", speedup);
  // The tuned config must never lose to the heuristic by more than noise.
  const bool ok = res.best_seconds <= t_heuristic * 1.05;
  std::printf("  %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
