// Quickstart: transform a plane wave on a simulated 8-rank cluster and
// find its single spectral peak.
//
//   ./quickstart [--ranks=8] [--n=48] [--platform=umd|hopper|ideal]
//                [--method=new|new0|th|th0|fftw]
//
// Walks through the whole public API: build a Plan3d, distribute a field,
// execute collectively inside Cluster::run, read the transposed-out
// spectrum, and print the per-step breakdown (the paper's Fig. 8
// categories).
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/fft_tuner.hpp"
#include "core/plan3d.hpp"
#include "util/cli.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 48));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{n, n, n};

  core::Plan3dOptions opts;
  opts.method = core::method_by_name(cli.get_string("method", "new"));
  const core::Plan3d plan(dims, p, opts);

  std::printf("overlapfft quickstart: %zu^3 complex FFT, %d ranks, %s, %s\n",
              n, p, core::to_string(plan.method()), platform.name.c_str());
  std::printf("  parameters: %s\n", plan.params().to_string().c_str());
  std::printf("  square fast transpose: %s\n",
              plan.square_fast_path() ? "yes (output layout y-z-x)"
                                      : "no (output layout z-y-x)");

  // A pure plane wave exp(2*pi*i*(3x/N + 5y/N + 7z/N)): its forward DFT is
  // a single peak of magnitude N^3 at mode (3, 5, 7).
  const std::size_t mx = 3, my = 5, mz = 7;
  core::DistributedField field(dims, p);
  field.fill_input([&](std::size_t i, std::size_t j, std::size_t k) {
    const double phase =
        2.0 * std::numbers::pi *
        (static_cast<double>(mx * i + my * j + mz * k) /
         static_cast<double>(n));
    return fft::Complex{std::cos(phase), std::sin(phase)};
  });

  sim::Cluster cluster(p, platform);
  core::StepBreakdown breakdown;
  double elapsed = 0.0;
  cluster.run([&](sim::Comm& comm) {
    core::StepBreakdown bd;
    const double t0 = comm.now();
    plan.execute(comm, field.slab(comm.rank()), &bd);
    const double dt = comm.now() - t0;
    const double makespan = comm.allreduce_max(dt);
    const core::StepBreakdown avg = bd.averaged(comm);
    if (comm.rank() == 0) {
      elapsed = makespan;
      breakdown = avg;
    }
  });

  // Locate the spectral peak.
  double peak = 0.0;
  std::size_t pi = 0, pj = 0, pk = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k) {
        const double mag =
            std::abs(field.output_at(i, j, k, plan.output_layout()));
        if (mag > peak) {
          peak = mag;
          pi = i;
          pj = j;
          pk = k;
        }
      }

  std::printf("\n  virtual execution time: %.6f s (simulated %s network)\n",
              elapsed, platform.name.c_str());
  std::printf("  per-step breakdown (mean over ranks):\n");
  for (std::size_t s = 0; s < core::kStepCount; ++s)
    std::printf("    %-10s %.6f s\n",
                core::step_name(static_cast<core::Step>(s)),
                breakdown.seconds[s]);

  std::printf("\n  spectral peak at mode (%zu, %zu, %zu), |X| = %.1f"
              " (expected (%zu, %zu, %zu), %.1f)\n",
              pi, pj, pk, peak, mx, my, mz, static_cast<double>(n * n * n));
  const bool ok = pi == mx && pj == my && pk == mz &&
                  std::abs(peak - static_cast<double>(n * n * n)) <
                      1e-6 * static_cast<double>(n * n * n);
  std::printf("  %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
