// Spectral Poisson solver on the simulated cluster — the "differential
// equation solving" use case from the paper's introduction.
//
// Solves  laplacian(u) = f  on the periodic unit cube for
//   u(x,y,z) = sin(2*pi*a*x) * sin(2*pi*b*y) * sin(2*pi*c*z)
// by forward 3-D FFT, division by -|k|^2, and backward 3-D FFT —
// exercising both transform directions and the transposed-out spectral
// layout (the multiply happens in z-y-x / y-z-x layout, no extra
// redistribution needed).
//
//   ./poisson_solver [--ranks=8] [--n=48] [--platform=umd]
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/plan3d.hpp"
#include "util/cli.hpp"

using namespace offt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_int("ranks", 8));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 48));
  const sim::Platform platform =
      sim::Platform::by_name(cli.get_string("platform", "umd"));
  const core::Dims dims{n, n, n};
  const double two_pi = 2.0 * std::numbers::pi;

  std::printf("spectral Poisson solver: %zu^3 grid, %d ranks, %s\n", n, p,
              platform.name.c_str());

  // Manufactured solution and matching right-hand side:
  // laplacian(u) = -(2*pi)^2 (a^2+b^2+c^2) u.
  const double a = 1, b = 2, c = 3;
  auto solution = [&](double x, double y, double z) {
    return std::sin(two_pi * a * x) * std::sin(two_pi * b * y) *
           std::sin(two_pi * c * z);
  };
  const double lap_factor = -(two_pi * two_pi) * (a * a + b * b + c * c);

  core::DistributedField field(dims, p);
  const double h = 1.0 / static_cast<double>(n);
  field.fill_input([&](std::size_t i, std::size_t j, std::size_t k) {
    return fft::Complex{
        lap_factor * solution(h * static_cast<double>(i),
                              h * static_cast<double>(j),
                              h * static_cast<double>(k)),
        0.0};
  });

  core::Plan3dOptions fwd_opts;
  fwd_opts.method = core::Method::New;
  const core::Plan3d fwd(dims, p, fwd_opts);
  core::Plan3dOptions bwd_opts = fwd_opts;
  bwd_opts.direction = fft::Direction::Backward;
  const core::Plan3d bwd(dims, p, bwd_opts);

  // Integer frequency -> signed wavenumber.
  auto wavenumber = [&](std::size_t m) {
    const auto s = static_cast<long long>(m);
    const auto nn = static_cast<long long>(n);
    return static_cast<double>(s <= nn / 2 ? s : s - nn);
  };

  const core::OutputLayout layout = fwd.output_layout();
  const core::Decomp& ydec = fwd.y_decomp();
  double elapsed = 0.0;

  sim::Cluster cluster(p, platform);
  cluster.run([&](sim::Comm& comm) {
    const int r = comm.rank();
    fft::Complex* slab = field.slab(r);
    const double t0 = comm.now();

    fwd.execute(comm, slab);

    // Spectral solve in the transposed-out layout the forward transform
    // produced: divide each mode by -|k|^2 (zero the DC mode).
    const std::size_t yc = ydec.count(r), y0 = ydec.offset(r);
    const double inv_n3 = 1.0 / static_cast<double>(dims.total());
    for (std::size_t jl = 0; jl < yc; ++jl) {
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
          const double kx = two_pi * wavenumber(i);
          const double ky = two_pi * wavenumber(y0 + jl);
          const double kz = two_pi * wavenumber(k);
          const double k2 = kx * kx + ky * ky + kz * kz;
          const std::size_t idx = layout == core::OutputLayout::ZYX
                                      ? (k * yc + jl) * n + i
                                      : (jl * n + k) * n + i;
          // Normalize the unnormalized forward+backward pair here too.
          slab[idx] *= (k2 == 0.0 ? 0.0 : -1.0 / k2) * inv_n3;
        }
      }
    }

    bwd.execute(comm, slab);
    const double dt = comm.allreduce_max(comm.now() - t0);
    if (r == 0) elapsed = dt;
  });

  // Compare with the analytic solution.
  double max_err = 0.0, max_u = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k) {
        const double u = solution(h * static_cast<double>(i),
                                  h * static_cast<double>(j),
                                  h * static_cast<double>(k));
        const double got = field.input_at(i, j, k).real();
        max_err = std::max(max_err, std::abs(got - u));
        max_u = std::max(max_u, std::abs(u));
      }

  std::printf("  forward + spectral solve + backward: %.6f virtual s\n",
              elapsed);
  std::printf("  max |u_fft - u_exact| = %.3e (|u|_max = %.3f)\n", max_err,
              max_u);
  const bool ok = max_err < 1e-9;
  std::printf("  %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
