// Correctness of Plan1d against the naive DFT across lengths that exercise
// every butterfly (2/3/4/5, generic primes) and the Bluestein path.
#include "fft/plan1d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fft/reference.hpp"
#include "util/rng.hpp"

namespace offt::fft {
namespace {

ComplexVector random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  ComplexVector v(n);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

double max_abs_diff(const ComplexVector& a, const ComplexVector& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

// Relative-ish tolerance: naive DFT itself accumulates O(n) rounding.
double tol_for(std::size_t n) { return 1e-10 * std::max<std::size_t>(n, 16); }

class Plan1dMatchesNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Plan1dMatchesNaive, Forward) {
  const std::size_t n = GetParam();
  const ComplexVector in = random_signal(n, 1000 + n);
  ComplexVector expect(n), got(n);
  dft_1d_naive(in.data(), expect.data(), n, Direction::Forward);

  const Plan1d plan(n, Direction::Forward);
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_abs_diff(expect, got), tol_for(n)) << "n=" << n;
}

TEST_P(Plan1dMatchesNaive, Backward) {
  const std::size_t n = GetParam();
  const ComplexVector in = random_signal(n, 2000 + n);
  ComplexVector expect(n), got(n);
  dft_1d_naive(in.data(), expect.data(), n, Direction::Backward);

  const Plan1d plan(n, Direction::Backward);
  plan.execute(in.data(), got.data());
  EXPECT_LT(max_abs_diff(expect, got), tol_for(n)) << "n=" << n;
}

TEST_P(Plan1dMatchesNaive, InPlaceMatchesOutOfPlace) {
  const std::size_t n = GetParam();
  ComplexVector data = random_signal(n, 3000 + n);
  ComplexVector out(n);

  const Plan1d plan(n, Direction::Forward);
  plan.execute(data.data(), out.data());
  plan.execute_inplace(data.data());
  EXPECT_LT(max_abs_diff(out, data), 1e-14) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, Plan1dMatchesNaive,
    ::testing::Values<std::size_t>(
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 20, 24, 25, 27, 30, 32,
        // generic small-prime butterflies
        7 * 4, 11, 13, 11 * 3, 13 * 5, 49,
        // paper-relevant sizes (and their halves)
        64, 96, 128, 160, 192, 256, 384,
        // Bluestein territory: primes and composites above the threshold
        67, 97, 101, 2 * 67, 3 * 73));

TEST(Plan1d, UsesBluesteinForHugePrimes) {
  EXPECT_TRUE(Plan1d(97, Direction::Forward).uses_bluestein());
  EXPECT_FALSE(Plan1d(96, Direction::Forward).uses_bluestein());
  EXPECT_FALSE(Plan1d(55, Direction::Forward).uses_bluestein());
}

TEST(Plan1d, LengthOneIsIdentity) {
  const Plan1d plan(1, Direction::Forward);
  Complex v{2.0, -3.0};
  Complex out;
  plan.execute(&v, &out);
  EXPECT_EQ(out, v);
}

TEST(Plan1d, ExecuteManyContiguousPencils) {
  const std::size_t n = 24, count = 7;
  ComplexVector data = random_signal(n * count, 99);
  ComplexVector expect = data;

  const Plan1d plan(n, Direction::Forward);
  for (std::size_t t = 0; t < count; ++t)
    plan.execute_inplace(expect.data() + t * n);
  plan.execute_many_inplace(data.data(), static_cast<std::ptrdiff_t>(n),
                            count);
  EXPECT_LT(max_abs_diff(expect, data), 1e-14);
}

TEST(Plan1d, ExecuteManyOutOfPlaceWithDistinctDists) {
  const std::size_t n = 16, count = 3;
  const ComplexVector in = random_signal(n * count + 10, 7);
  ComplexVector out(2 * n * count, Complex{0, 0});

  const Plan1d plan(n, Direction::Forward);
  plan.execute_many(in.data(), static_cast<std::ptrdiff_t>(n) + 3, out.data(),
                    2 * static_cast<std::ptrdiff_t>(n), count);

  for (std::size_t t = 0; t < count; ++t) {
    ComplexVector expect(n);
    plan.execute(in.data() + t * (n + 3), expect.data());
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_NEAR(std::abs(expect[k] - out[t * 2 * n + k]), 0.0, 1e-14);
  }
}

TEST(Plan1d, StridedMatchesContiguous) {
  const std::size_t n = 36;
  const std::ptrdiff_t stride = 5;
  const ComplexVector contiguous = random_signal(n, 55);

  ComplexVector strided(n * stride, Complex{-7, -7});
  for (std::size_t k = 0; k < n; ++k) strided[k * stride] = contiguous[k];

  const Plan1d plan(n, Direction::Forward);
  ComplexVector expect(n);
  plan.execute(contiguous.data(), expect.data());

  ComplexVector out(n * stride, Complex{0, 0});
  plan.execute_strided(strided.data(), stride, out.data(), stride);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(expect[k] - out[k * stride]), 0.0, 1e-12);
  // Gaps must be untouched.
  EXPECT_EQ(out[1], (Complex{0, 0}));
}

TEST(Plan1d, StridedInPlace) {
  const std::size_t n = 20;
  const std::ptrdiff_t stride = 3;
  ComplexVector data = random_signal(n * stride, 77);
  ComplexVector expect_in(n);
  for (std::size_t k = 0; k < n; ++k) expect_in[k] = data[k * stride];

  const Plan1d plan(n, Direction::Backward);
  ComplexVector expect(n);
  plan.execute(expect_in.data(), expect.data());

  plan.execute_strided(data.data(), stride, data.data(), stride);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(expect[k] - data[k * stride]), 0.0, 1e-12);
}

TEST(Plan1d, BluesteinStrided) {
  const std::size_t n = 67;  // prime above the Bluestein threshold
  const std::ptrdiff_t stride = 2;
  const ComplexVector contiguous = random_signal(n, 11);
  ComplexVector strided(n * stride);
  for (std::size_t k = 0; k < n; ++k) strided[k * stride] = contiguous[k];

  const Plan1d plan(n, Direction::Forward);
  ComplexVector expect(n), got(n * stride);
  plan.execute(contiguous.data(), expect.data());
  plan.execute_strided(strided.data(), stride, got.data(), stride);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(expect[k] - got[k * stride]), 0.0, 1e-9);
}

TEST(Plan1d, RadixPreferenceChangesStagesNotResult) {
  const std::size_t n = 64;
  const ComplexVector in = random_signal(n, 5);

  const Plan1d p42(n, Direction::Forward, {{4, 2}});
  const Plan1d p2(n, Direction::Forward, {{2}});
  EXPECT_NE(p42.stages().size(), p2.stages().size());

  ComplexVector a(n), b(n);
  p42.execute(in.data(), a.data());
  p2.execute(in.data(), b.data());
  EXPECT_LT(max_abs_diff(a, b), 1e-12);
}

TEST(Plan1d, ScaleHelper) {
  ComplexVector v{{2, 4}, {-6, 8}};
  scale(v.data(), v.size(), 0.5);
  EXPECT_EQ(v[0], (Complex{1, 2}));
  EXPECT_EQ(v[1], (Complex{-3, 4}));
}

TEST(Plan1d, RejectsZeroLength) {
  EXPECT_THROW(Plan1d(0, Direction::Forward), std::logic_error);
}

}  // namespace
}  // namespace offt::fft
