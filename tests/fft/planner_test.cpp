#include "fft/planner.hpp"

#include <gtest/gtest.h>

#include "fft/reference.hpp"
#include "util/rng.hpp"

namespace offt::fft {
namespace {

TEST(Planner, AllModesProduceCorrectPlans) {
  const std::size_t n = 96;
  util::Rng rng(1);
  ComplexVector in(n), expect(n), got(n);
  for (auto& v : in) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  dft_1d_naive(in.data(), expect.data(), n, Direction::Forward);

  for (Planning mode :
       {Planning::Estimate, Planning::Measure, Planning::Patient}) {
    clear_plan_cache();
    const auto plan = plan_best_1d(n, Direction::Forward, mode);
    ASSERT_NE(plan, nullptr);
    plan->execute(in.data(), got.data());
    for (std::size_t k = 0; k < n; ++k)
      EXPECT_NEAR(std::abs(expect[k] - got[k]), 0.0, 1e-9)
          << to_string(mode) << " k=" << k;
  }
}

TEST(Planner, CacheHitReturnsSamePlanAndZeroTuningTime) {
  clear_plan_cache();
  double t1 = -1, t2 = -1;
  const auto a = plan_best_1d(128, Direction::Forward, Planning::Measure, &t1);
  const auto b = plan_best_1d(128, Direction::Forward, Planning::Measure, &t2);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GT(t1, 0.0);
  EXPECT_EQ(t2, 0.0);
}

TEST(Planner, DirectionsAreCachedSeparately) {
  clear_plan_cache();
  const auto f = plan_best_1d(64, Direction::Forward, Planning::Estimate);
  const auto b = plan_best_1d(64, Direction::Backward, Planning::Estimate);
  EXPECT_NE(f.get(), b.get());
  EXPECT_EQ(f->direction(), Direction::Forward);
  EXPECT_EQ(b->direction(), Direction::Backward);
}

TEST(Planner, PatientTakesAtLeastAsLongAsEstimate) {
  clear_plan_cache();
  double t_est = 0, t_pat = 0;
  plan_best_1d(256, Direction::Forward, Planning::Estimate, &t_est);
  clear_plan_cache();
  plan_best_1d(256, Direction::Forward, Planning::Patient, &t_pat);
  // Patient measures several candidates several times; Estimate measures
  // nothing.  The inequality is robust even on a noisy machine.
  EXPECT_GE(t_pat, t_est);
  EXPECT_GT(t_pat, 0.0);
}

TEST(Planner, ToString) {
  EXPECT_STREQ(to_string(Planning::Estimate), "estimate");
  EXPECT_STREQ(to_string(Planning::Measure), "measure");
  EXPECT_STREQ(to_string(Planning::Patient), "patient");
}

}  // namespace
}  // namespace offt::fft
