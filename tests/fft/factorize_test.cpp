#include "fft/factorize.hpp"

#include <gtest/gtest.h>

namespace offt::fft {
namespace {

std::size_t product_of_radices(const std::vector<Stage>& stages) {
  std::size_t p = 1;
  for (const Stage& s : stages) p *= s.radix;
  return p;
}

TEST(Factorize, RadicesMultiplyToN) {
  for (std::size_t n : {2u, 6u, 8u, 12u, 60u, 97u, 128u, 384u, 640u, 1000u}) {
    const auto stages = factorize(n, {4, 2, 3, 5});
    EXPECT_EQ(product_of_radices(stages), n) << "n=" << n;
  }
}

TEST(Factorize, StageSubsizesAreConsistent) {
  const auto stages = factorize(360, {4, 2, 3, 5});
  std::size_t expect_m = 360;
  for (const Stage& s : stages) {
    expect_m /= s.radix;
    EXPECT_EQ(s.m, expect_m);
  }
  EXPECT_EQ(stages.back().m, 1u);
}

TEST(Factorize, HonorsPreferenceOrder) {
  const auto stages = factorize(16, {4, 2});
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].radix, 4u);
  EXPECT_EQ(stages[1].radix, 4u);

  const auto stages2 = factorize(16, {2, 4});
  ASSERT_EQ(stages2.size(), 4u);
  for (const Stage& s : stages2) EXPECT_EQ(s.radix, 2u);
}

TEST(Factorize, FallsBackToSmallestPrime) {
  const auto stages = factorize(49, {4, 2, 3, 5});
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].radix, 7u);
}

TEST(Factorize, PrimeLength) {
  const auto stages = factorize(97, {4, 2, 3, 5});
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].radix, 97u);
  EXPECT_EQ(stages[0].m, 1u);
}

TEST(Factorize, LengthOneHasNoStages) {
  EXPECT_TRUE(factorize(1, {4, 2}).empty());
}

TEST(Factorize, LargestPrimeFactor) {
  EXPECT_EQ(largest_prime_factor(1), 1u);
  EXPECT_EQ(largest_prime_factor(2), 2u);
  EXPECT_EQ(largest_prime_factor(12), 3u);
  EXPECT_EQ(largest_prime_factor(640), 5u);
  EXPECT_EQ(largest_prime_factor(97), 97u);
  EXPECT_EQ(largest_prime_factor(2 * 3 * 101), 101u);
}

TEST(Factorize, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(64), 64u);
}

TEST(Factorize, NextSmooth) {
  EXPECT_EQ(next_smooth(1), 1u);
  EXPECT_EQ(next_smooth(7), 8u);
  EXPECT_EQ(next_smooth(11), 12u);
  EXPECT_EQ(next_smooth(97), 100u);
  EXPECT_EQ(next_smooth(128), 128u);
}

}  // namespace
}  // namespace offt::fft
