#include "fft/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fft/plan1d.hpp"
#include "util/rng.hpp"

namespace offt::fft {
namespace {

ComplexVector random_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  ComplexVector v(n);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

TEST(NaiveDft, MatchesClosedFormForTinyInput) {
  // n = 2: X0 = x0 + x1, X1 = x0 - x1.
  const ComplexVector in{{1, 2}, {3, -4}};
  ComplexVector out(2);
  dft_1d_naive(in.data(), out.data(), 2, Direction::Forward);
  EXPECT_NEAR(std::abs(out[0] - Complex{4, -2}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(out[1] - Complex{-2, 6}), 0.0, 1e-14);
}

TEST(NaiveDft, BackwardIsConjugateOfForwardOnConjugate) {
  const std::size_t n = 9;
  const ComplexVector x = random_data(n, 1);
  ComplexVector conj_x(n);
  for (std::size_t i = 0; i < n; ++i) conj_x[i] = std::conj(x[i]);

  ComplexVector bwd(n), fwd_conj(n);
  dft_1d_naive(x.data(), bwd.data(), n, Direction::Backward);
  dft_1d_naive(conj_x.data(), fwd_conj.data(), n, Direction::Forward);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(bwd[k] - std::conj(fwd_conj[k])), 0.0, 1e-12);
}

TEST(Fft3dSerial, MatchesNaive3d) {
  const std::size_t nx = 4, ny = 6, nz = 5;
  const ComplexVector in = random_data(nx * ny * nz, 2);
  ComplexVector expect(nx * ny * nz);
  dft3d_naive(in.data(), expect.data(), nx, ny, nz, Direction::Forward);

  ComplexVector got = in;
  fft3d_serial(got.data(), nx, ny, nz, Direction::Forward);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(std::abs(got[i] - expect[i]), 0.0, 1e-10) << "i=" << i;
}

TEST(Fft3dSerial, CubeRoundTrip) {
  const std::size_t n = 8;
  const ComplexVector orig = random_data(n * n * n, 3);
  ComplexVector data = orig;
  fft3d_serial(data.data(), n, n, n, Direction::Forward);
  fft3d_serial(data.data(), n, n, n, Direction::Backward);
  const double inv = 1.0 / static_cast<double>(n * n * n);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] * inv - orig[i]), 0.0, 1e-11);
}

TEST(Fft3dSerial, SeparableInput) {
  // A product input f(i,j,k) = a(i)b(j)c(k) transforms to the product of
  // the 1-D transforms.
  const std::size_t nx = 3, ny = 4, nz = 8;
  const ComplexVector a = random_data(nx, 4), b = random_data(ny, 5),
                      c = random_data(nz, 6);
  ComplexVector f(nx * ny * nz);
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 0; k < nz; ++k)
        f[(i * ny + j) * nz + k] = a[i] * b[j] * c[k];

  fft3d_serial(f.data(), nx, ny, nz, Direction::Forward);

  ComplexVector fa(nx), fb(ny), fc(nz);
  dft_1d_naive(a.data(), fa.data(), nx, Direction::Forward);
  dft_1d_naive(b.data(), fb.data(), ny, Direction::Forward);
  dft_1d_naive(c.data(), fc.data(), nz, Direction::Forward);

  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 0; k < nz; ++k)
        EXPECT_NEAR(std::abs(f[(i * ny + j) * nz + k] - fa[i] * fb[j] * fc[k]),
                    0.0, 1e-10);
}

TEST(Dft3dNaive, ImpulseGivesAllOnes) {
  const std::size_t nx = 2, ny = 3, nz = 4;
  ComplexVector in(nx * ny * nz, Complex{0, 0});
  in[0] = {1, 0};
  ComplexVector out(nx * ny * nz);
  dft3d_naive(in.data(), out.data(), nx, ny, nz, Direction::Forward);
  for (const Complex& v : out)
    EXPECT_NEAR(std::abs(v - Complex{1, 0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace offt::fft
