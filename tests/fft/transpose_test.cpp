#include "fft/transpose.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace offt::fft {
namespace {

ComplexVector random_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  ComplexVector v(n);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

struct Shape {
  std::size_t rows, cols;
};

class Transpose2d : public ::testing::TestWithParam<Shape> {};

TEST_P(Transpose2d, BlockedMatchesNaive) {
  const auto [rows, cols] = GetParam();
  const ComplexVector in = random_data(rows * cols, rows * 31 + cols);
  ComplexVector naive(rows * cols), blocked(rows * cols);
  transpose_2d_naive(in.data(), rows, cols, naive.data());
  transpose_2d_blocked(in.data(), rows, cols, blocked.data());
  EXPECT_EQ(naive, blocked);
}

TEST_P(Transpose2d, MappingIsCorrect) {
  const auto [rows, cols] = GetParam();
  const ComplexVector in = random_data(rows * cols, 7);
  ComplexVector out(rows * cols);
  transpose_2d_blocked(in.data(), rows, cols, out.data());
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      EXPECT_EQ(out[c * rows + r], in[r * cols + c]);
}

TEST_P(Transpose2d, DoubleTransposeIsIdentity) {
  const auto [rows, cols] = GetParam();
  const ComplexVector in = random_data(rows * cols, 13);
  ComplexVector once(rows * cols), twice(rows * cols);
  transpose_2d_blocked(in.data(), rows, cols, once.data());
  transpose_2d_blocked(once.data(), cols, rows, twice.data());
  EXPECT_EQ(in, twice);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Transpose2d,
    ::testing::Values(Shape{1, 1}, Shape{1, 17}, Shape{17, 1}, Shape{4, 4},
                      Shape{32, 32}, Shape{33, 31}, Shape{5, 100},
                      Shape{100, 5}, Shape{64, 48}, Shape{40, 96}));

TEST(TransposeInplaceSquare, MatchesOutOfPlace) {
  for (std::size_t n : {1u, 2u, 7u, 32u, 33u, 64u}) {
    ComplexVector a = random_data(n * n, n);
    ComplexVector expect(n * n);
    transpose_2d_naive(a.data(), n, n, expect.data());
    transpose_2d_inplace_square(a.data(), n);
    EXPECT_EQ(a, expect) << "n=" << n;
  }
}

// Index helpers: slab is x-y-z row-major, so in[(i*y + j)*z + k].
TEST(Permute3d, XyzToZxy) {
  const std::size_t x = 3, y = 4, z = 5;
  const ComplexVector in = random_data(x * y * z, 3);
  ComplexVector out(x * y * z);
  permute_xyz_to_zxy(in.data(), x, y, z, out.data());
  for (std::size_t i = 0; i < x; ++i)
    for (std::size_t j = 0; j < y; ++j)
      for (std::size_t k = 0; k < z; ++k)
        EXPECT_EQ(out[(k * x + i) * y + j], in[(i * y + j) * z + k]);
}

TEST(Permute3d, ZxyToXyzInvertsZxy) {
  const std::size_t x = 4, y = 3, z = 6;
  const ComplexVector in = random_data(x * y * z, 4);
  ComplexVector mid(x * y * z), back(x * y * z);
  permute_xyz_to_zxy(in.data(), x, y, z, mid.data());
  permute_zxy_to_xyz(mid.data(), x, y, z, back.data());
  EXPECT_EQ(in, back);
}

TEST(Permute3d, XyzToXzy) {
  const std::size_t x = 2, y = 5, z = 3;
  const ComplexVector in = random_data(x * y * z, 5);
  ComplexVector out(x * y * z);
  permute_xyz_to_xzy(in.data(), x, y, z, out.data());
  for (std::size_t i = 0; i < x; ++i)
    for (std::size_t j = 0; j < y; ++j)
      for (std::size_t k = 0; k < z; ++k)
        EXPECT_EQ(out[(i * z + k) * y + j], in[(i * y + j) * z + k]);
}

TEST(Permute3d, NaiveAndBlockedAgree) {
  const std::size_t x = 6, y = 7, z = 8;
  const ComplexVector in = random_data(x * y * z, 6);
  ComplexVector a(x * y * z), b(x * y * z);
  permute_xyz_to_zxy(in.data(), x, y, z, a.data(), /*blocked=*/true);
  permute_xyz_to_zxy(in.data(), x, y, z, b.data(), /*blocked=*/false);
  EXPECT_EQ(a, b);
  permute_xyz_to_xzy(in.data(), x, y, z, a.data(), /*blocked=*/true);
  permute_xyz_to_xzy(in.data(), x, y, z, b.data(), /*blocked=*/false);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace offt::fft
