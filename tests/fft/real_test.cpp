// Real-to-complex / complex-to-real transforms (the §2.3 technique the
// paper notes its overlap method also applies to).
#include "fft/real.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fft/reference.hpp"
#include "util/rng.hpp"

namespace offt::fft {
namespace {

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

class R2cLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(R2cLengths, MatchesComplexTransformOfRealInput) {
  const std::size_t n = GetParam();
  const std::vector<double> x = random_real(n, n);

  ComplexVector cin(n), expect(n);
  for (std::size_t j = 0; j < n; ++j) cin[j] = {x[j], 0.0};
  dft_1d_naive(cin.data(), expect.data(), n, Direction::Forward);

  const PlanR2c plan(n);
  ComplexVector got(plan.spectrum_size());
  plan.execute(x.data(), got.data());
  for (std::size_t k = 0; k <= n / 2; ++k)
    EXPECT_NEAR(std::abs(got[k] - expect[k]), 0.0, 1e-10 * n)
        << "n=" << n << " k=" << k;
}

TEST_P(R2cLengths, RoundTripScalesByN) {
  const std::size_t n = GetParam();
  const std::vector<double> x = random_real(n, 3 * n);
  const PlanR2c plan(n);
  ComplexVector spec(plan.spectrum_size());
  std::vector<double> back(n);
  plan.execute(x.data(), spec.data());
  plan.execute_c2r(spec.data(), back.data());
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_NEAR(back[j], static_cast<double>(n) * x[j], 1e-10 * n)
        << "n=" << n << " j=" << j;
}

INSTANTIATE_TEST_SUITE_P(Lengths, R2cLengths,
                         ::testing::Values<std::size_t>(2, 4, 6, 8, 10, 12,
                                                        16, 24, 30, 32, 48,
                                                        64, 96, 128, 160));

TEST(PlanR2c, DcAndNyquistAreReal) {
  const std::size_t n = 16;
  const std::vector<double> x = random_real(n, 9);
  const PlanR2c plan(n);
  ComplexVector spec(plan.spectrum_size());
  plan.execute(x.data(), spec.data());
  EXPECT_DOUBLE_EQ(spec[0].imag(), 0.0);
  EXPECT_DOUBLE_EQ(spec[n / 2].imag(), 0.0);
}

TEST(PlanR2c, DcBinIsTheSum) {
  const std::size_t n = 12;
  const std::vector<double> x = random_real(n, 10);
  double sum = 0;
  for (const double v : x) sum += v;
  const PlanR2c plan(n);
  ComplexVector spec(plan.spectrum_size());
  plan.execute(x.data(), spec.data());
  EXPECT_NEAR(spec[0].real(), sum, 1e-12 * n);
}

TEST(PlanR2c, CosineGivesSingleBin) {
  const std::size_t n = 32, mode = 5;
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j)
    x[j] = std::cos(2.0 * std::numbers::pi * static_cast<double>(mode * j) /
                    static_cast<double>(n));
  const PlanR2c plan(n);
  ComplexVector spec(plan.spectrum_size());
  plan.execute(x.data(), spec.data());
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double expect = k == mode ? static_cast<double>(n) / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(spec[k]), expect, 1e-10) << "k=" << k;
  }
}

TEST(PlanR2c, RejectsOddLengths) {
  EXPECT_THROW(PlanR2c(9), std::logic_error);
  EXPECT_THROW(PlanR2c(1), std::logic_error);
}

TEST(PlanR2c, SpectrumSize) {
  EXPECT_EQ(PlanR2c(8).spectrum_size(), 5u);
  EXPECT_EQ(PlanR2c(10).spectrum_size(), 6u);
}

}  // namespace
}  // namespace offt::fft
