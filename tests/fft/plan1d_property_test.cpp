// Mathematical invariants of the DFT, checked on the fast plans:
// linearity, Parseval's theorem, forward/backward round trip, the shift
// theorem, and the convolution theorem.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fft/plan1d.hpp"
#include "util/rng.hpp"

namespace offt::fft {
namespace {

ComplexVector random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  ComplexVector v(n);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

class FftProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftProperties, RoundTripRecoversInputTimesN) {
  const std::size_t n = GetParam();
  const ComplexVector orig = random_signal(n, n);
  ComplexVector data = orig;

  Plan1d(n, Direction::Forward).execute_inplace(data.data());
  Plan1d(n, Direction::Backward).execute_inplace(data.data());
  scale(data.data(), n, 1.0 / static_cast<double>(n));

  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(data[i] - orig[i]), 0.0, 1e-11) << "n=" << n;
}

TEST_P(FftProperties, Linearity) {
  const std::size_t n = GetParam();
  const ComplexVector a = random_signal(n, 2 * n);
  const ComplexVector b = random_signal(n, 2 * n + 1);
  const Complex alpha{0.7, -1.3}, beta{-2.1, 0.4};

  const Plan1d plan(n, Direction::Forward);
  ComplexVector fa(n), fb(n), combo(n), fcombo(n);
  plan.execute(a.data(), fa.data());
  plan.execute(b.data(), fb.data());
  for (std::size_t i = 0; i < n; ++i) combo[i] = alpha * a[i] + beta * b[i];
  plan.execute(combo.data(), fcombo.data());

  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fcombo[i] - (alpha * fa[i] + beta * fb[i])), 0.0,
                1e-10);
}

TEST_P(FftProperties, Parseval) {
  const std::size_t n = GetParam();
  const ComplexVector x = random_signal(n, 3 * n);
  ComplexVector fx(n);
  Plan1d(n, Direction::Forward).execute(x.data(), fx.data());

  double time_energy = 0, freq_energy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    time_energy += std::norm(x[i]);
    freq_energy += std::norm(fx[i]);
  }
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-9 * time_energy * static_cast<double>(n));
}

TEST_P(FftProperties, ImpulseTransformsToConstant) {
  const std::size_t n = GetParam();
  ComplexVector x(n, Complex{0, 0});
  x[0] = {1.0, 0.0};
  Plan1d(n, Direction::Forward).execute_inplace(x.data());
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(x[k] - Complex{1.0, 0.0}), 0.0, 1e-12);
}

TEST_P(FftProperties, ConstantTransformsToImpulse) {
  const std::size_t n = GetParam();
  ComplexVector x(n, Complex{1.0, 0.0});
  Plan1d(n, Direction::Forward).execute_inplace(x.data());
  EXPECT_NEAR(std::abs(x[0] - Complex{static_cast<double>(n), 0.0}), 0.0,
              1e-10 * n);
  for (std::size_t k = 1; k < n; ++k)
    EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-10 * n);
}

TEST_P(FftProperties, CircularShiftBecomesPhaseRamp) {
  const std::size_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  const std::size_t shift = n / 3 + 1;
  const ComplexVector x = random_signal(n, 4 * n);
  ComplexVector shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = x[(i + n - shift % n) % n];

  const Plan1d plan(n, Direction::Forward);
  ComplexVector fx(n), fshift(n);
  plan.execute(x.data(), fx.data());
  plan.execute(shifted.data(), fshift.data());

  for (std::size_t k = 0; k < n; ++k) {
    const double phase = -2.0 * std::numbers::pi *
                         static_cast<double>((k * (shift % n)) % n) /
                         static_cast<double>(n);
    const Complex ramp{std::cos(phase), std::sin(phase)};
    EXPECT_NEAR(std::abs(fshift[k] - fx[k] * ramp), 0.0, 1e-10) << "k=" << k;
  }
}

TEST_P(FftProperties, ConvolutionTheorem) {
  const std::size_t n = GetParam();
  const ComplexVector x = random_signal(n, 5 * n);
  const ComplexVector h = random_signal(n, 5 * n + 1);

  // Direct circular convolution.
  ComplexVector direct(n, Complex{0, 0});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) direct[(i + j) % n] += x[i] * h[j];

  // Via FFT.
  const Plan1d fwd(n, Direction::Forward);
  const Plan1d bwd(n, Direction::Backward);
  ComplexVector fx(n), fh(n);
  fwd.execute(x.data(), fx.data());
  fwd.execute(h.data(), fh.data());
  for (std::size_t k = 0; k < n; ++k) fx[k] *= fh[k];
  bwd.execute_inplace(fx.data());
  scale(fx.data(), n, 1.0 / static_cast<double>(n));

  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fx[i] - direct[i]), 0.0, 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftProperties,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6, 8,
                                                        12, 16, 24, 30, 32,
                                                        48, 64, 97, 100, 128,
                                                        160));

}  // namespace
}  // namespace offt::fft
