// Additional FFT substrate coverage: move semantics, spectral identities
// for structurally special inputs, and planner cache behaviour under
// concurrent access patterns.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "fft/plan1d.hpp"
#include "fft/planner.hpp"
#include "fft/reference.hpp"
#include "util/rng.hpp"

namespace offt::fft {
namespace {

ComplexVector random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  ComplexVector v(n);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

TEST(Plan1dExtra, MoveConstructionPreservesBehaviour) {
  const std::size_t n = 48;
  const ComplexVector in = random_signal(n, 1);
  ComplexVector expect(n), got(n);

  Plan1d original(n, Direction::Forward);
  original.execute(in.data(), expect.data());

  Plan1d moved = std::move(original);
  moved.execute(in.data(), got.data());
  EXPECT_EQ(moved.size(), n);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(expect[k] - got[k]), 0.0, 1e-15);
}

TEST(Plan1dExtra, DcBinIsTheSum) {
  const std::size_t n = 37;
  const ComplexVector x = random_signal(n, 2);
  Complex sum{0, 0};
  for (const Complex& v : x) sum += v;

  ComplexVector fx(n);
  Plan1d(n, Direction::Forward).execute(x.data(), fx.data());
  EXPECT_NEAR(std::abs(fx[0] - sum), 0.0, 1e-11);
}

TEST(Plan1dExtra, RealInputHasConjugateSymmetry) {
  const std::size_t n = 40;
  util::Rng rng(3);
  ComplexVector x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), 0.0};

  ComplexVector fx(n);
  Plan1d(n, Direction::Forward).execute(x.data(), fx.data());
  for (std::size_t k = 1; k < n; ++k)
    EXPECT_NEAR(std::abs(fx[k] - std::conj(fx[n - k])), 0.0, 1e-11)
        << "k=" << k;
}

TEST(Plan1dExtra, EvenRealInputHasRealSpectrum) {
  // x[j] = x[n-j] (even) and real -> X[k] real.
  const std::size_t n = 32;
  util::Rng rng(4);
  ComplexVector x(n, Complex{0, 0});
  x[0] = {rng.uniform(-1, 1), 0};
  for (std::size_t j = 1; j <= n / 2; ++j) {
    const double v = rng.uniform(-1, 1);
    x[j] = {v, 0};
    x[n - j] = {v, 0};
  }
  ComplexVector fx(n);
  Plan1d(n, Direction::Forward).execute(x.data(), fx.data());
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(fx[k].imag(), 0.0, 1e-11) << "k=" << k;
}

TEST(Plan1dExtra, UpsamplingByZeroStuffingReplicatesSpectrum) {
  // Inserting a zero after every sample (length 2n) gives
  // X2[k] = X[k mod n].
  const std::size_t n = 24;
  const ComplexVector x = random_signal(n, 5);
  ComplexVector x2(2 * n, Complex{0, 0});
  for (std::size_t j = 0; j < n; ++j) x2[2 * j] = x[j];

  ComplexVector fx(n), fx2(2 * n);
  Plan1d(n, Direction::Forward).execute(x.data(), fx.data());
  Plan1d(2 * n, Direction::Forward).execute(x2.data(), fx2.data());
  for (std::size_t k = 0; k < 2 * n; ++k)
    EXPECT_NEAR(std::abs(fx2[k] - fx[k % n]), 0.0, 1e-10) << "k=" << k;
}

TEST(Plan1dExtra, BluesteinAgreesWithDirectOnSameLength) {
  // 343 = 7^3 has only small factors (direct path); 347 is prime
  // (Bluestein).  Both must match the naive DFT.
  for (const std::size_t n : {343u, 347u}) {
    const ComplexVector in = random_signal(n, n);
    ComplexVector expect(n), got(n);
    dft_1d_naive(in.data(), expect.data(), n, Direction::Forward);
    const Plan1d plan(n, Direction::Forward);
    plan.execute(in.data(), got.data());
    double worst = 0;
    for (std::size_t k = 0; k < n; ++k)
      worst = std::max(worst, std::abs(expect[k] - got[k]));
    EXPECT_LT(worst, 1e-8) << "n=" << n
                           << " bluestein=" << plan.uses_bluestein();
  }
}

TEST(PlannerExtra, ConcurrentLookupsReturnOnePlan) {
  clear_plan_cache();
  std::vector<std::shared_ptr<const Plan1d>> results(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&results, t] {
      results[static_cast<std::size_t>(t)] =
          plan_best_1d(144, Direction::Forward, Planning::Measure);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(results[0].get(), results[t].get());
}

TEST(PlannerExtra, CachedPlanSurvivesCacheClear) {
  // shared_ptr semantics: clearing the cache must not invalidate plans
  // already handed out.
  const auto plan = plan_best_1d(60, Direction::Backward, Planning::Estimate);
  clear_plan_cache();
  ComplexVector buf = random_signal(60, 6);
  plan->execute_inplace(buf.data());  // must not crash
  EXPECT_EQ(plan->size(), 60u);
}

}  // namespace
}  // namespace offt::fft
