#include "core/field.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace offt::core {
namespace {

TEST(Decompose, DivisibleIsUniform) {
  const Decomp d = decompose(16, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(d.count(r), 4u);
    EXPECT_EQ(d.offset(r), static_cast<std::size_t>(4 * r));
  }
  EXPECT_TRUE(d.uniform());
}

TEST(Decompose, NonDivisibleFrontLoadsExtras) {
  const Decomp d = decompose(10, 4);
  EXPECT_EQ(d.counts, (std::vector<std::size_t>{3, 3, 2, 2}));
  EXPECT_EQ(d.offsets, (std::vector<std::size_t>{0, 3, 6, 8}));
  EXPECT_FALSE(d.uniform());
}

TEST(Decompose, SingleRankTakesAll) {
  const Decomp d = decompose(7, 1);
  EXPECT_EQ(d.count(0), 7u);
  EXPECT_EQ(d.offset(0), 0u);
}

TEST(Decompose, CountsSumToN) {
  for (std::size_t n : {1u, 5u, 16u, 17u, 100u}) {
    for (int p : {1, 2, 3, 7, 8}) {
      if (n < static_cast<std::size_t>(p)) continue;
      const Decomp d = decompose(n, p);
      std::size_t sum = 0;
      for (const std::size_t c : d.counts) sum += c;
      EXPECT_EQ(sum, n) << n << "/" << p;
    }
  }
}

TEST(DistributedField, ScatterGatherInputRoundTrip) {
  const Dims dims{6, 5, 4};
  fft::ComplexVector global(dims.total());
  util::Rng rng(1);
  for (auto& v : global) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};

  DistributedField field(dims, 3);
  field.scatter_input(global.data());
  fft::ComplexVector back(dims.total());
  field.gather_input(back.data());
  EXPECT_EQ(global, back);
}

TEST(DistributedField, InputAtMatchesFill) {
  const Dims dims{4, 4, 4};
  DistributedField field(dims, 2);
  field.fill_input([](std::size_t i, std::size_t j, std::size_t k) {
    return fft::Complex{static_cast<double>(i * 100 + j * 10 + k), 0.0};
  });
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(field.input_at(i, j, k).real(),
                  static_cast<double>(i * 100 + j * 10 + k));
}

TEST(DistributedField, OutputIndexingZyx) {
  const Dims dims{4, 6, 2};
  const int p = 3;
  DistributedField field(dims, p);
  // Write directly in z-y-x y-slab layout, then read through output_at.
  for (int r = 0; r < p; ++r) {
    const std::size_t yc = field.y_decomp().count(r);
    const std::size_t y0 = field.y_decomp().offset(r);
    fft::Complex* s = field.slab(r);
    for (std::size_t k = 0; k < dims.nz; ++k)
      for (std::size_t jl = 0; jl < yc; ++jl)
        for (std::size_t i = 0; i < dims.nx; ++i)
          s[(k * yc + jl) * dims.nx + i] = {
              static_cast<double>(i * 100 + (y0 + jl) * 10 + k), 0.0};
  }
  for (std::size_t i = 0; i < dims.nx; ++i)
    for (std::size_t j = 0; j < dims.ny; ++j)
      for (std::size_t k = 0; k < dims.nz; ++k)
        EXPECT_EQ(field.output_at(i, j, k, OutputLayout::ZYX).real(),
                  static_cast<double>(i * 100 + j * 10 + k));
}

TEST(DistributedField, OutputIndexingYzx) {
  const Dims dims{5, 5, 3};
  const int p = 2;
  DistributedField field(dims, p);
  for (int r = 0; r < p; ++r) {
    const std::size_t yc = field.y_decomp().count(r);
    const std::size_t y0 = field.y_decomp().offset(r);
    fft::Complex* s = field.slab(r);
    for (std::size_t jl = 0; jl < yc; ++jl)
      for (std::size_t k = 0; k < dims.nz; ++k)
        for (std::size_t i = 0; i < dims.nx; ++i)
          s[(jl * dims.nz + k) * dims.nx + i] = {
              static_cast<double>(i * 100 + (y0 + jl) * 10 + k), 0.0};
  }
  for (std::size_t i = 0; i < dims.nx; ++i)
    for (std::size_t j = 0; j < dims.ny; ++j)
      for (std::size_t k = 0; k < dims.nz; ++k)
        EXPECT_EQ(field.output_at(i, j, k, OutputLayout::YZX).real(),
                  static_cast<double>(i * 100 + j * 10 + k));
}

TEST(DistributedField, SlabSizeCoversInputAndOutput) {
  // Non-divisible: input and output slabs differ in size; the buffer must
  // fit both.
  const Dims dims{10, 9, 8};
  DistributedField field(dims, 4);
  for (int r = 0; r < 4; ++r) {
    const std::size_t in = field.x_decomp().count(r) * dims.ny * dims.nz;
    const std::size_t out = field.y_decomp().count(r) * dims.nz * dims.nx;
    EXPECT_GE(field.slab_elements(), in);
    EXPECT_GE(field.slab_elements(), out);
  }
}

}  // namespace
}  // namespace offt::core
