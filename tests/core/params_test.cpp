#include "core/params.hpp"

#include <gtest/gtest.h>

namespace offt::core {
namespace {

const Dims kDims{256, 256, 256};

TEST(Params, HeuristicMatchesPaperDefaults) {
  // §4.4: T = Nz/16, W = 2, Px = 8192/Ny, Pz = 8192/Ny/Px,
  // Uy = 8192/Nx, Uz = 8192/Nx/Uy, F* = p/2.
  const Params h = Params::heuristic(kDims, 16);
  EXPECT_EQ(h.T, 16);
  EXPECT_EQ(h.W, 2);
  EXPECT_EQ(h.Px, 32);  // 8192/256
  EXPECT_EQ(h.Pz, 1);   // 8192/256/32
  EXPECT_EQ(h.Uy, 32);
  EXPECT_EQ(h.Uz, 1);
  EXPECT_EQ(h.Fy, 8);
  EXPECT_EQ(h.Fp, 8);
  EXPECT_EQ(h.Fu, 8);
  EXPECT_EQ(h.Fx, 8);
}

TEST(Params, HeuristicNeverProducesZeroes) {
  const Params h = Params::heuristic({16, 16, 8}, 3, /*cache_bytes=*/1024);
  EXPECT_GE(h.T, 1);
  EXPECT_GE(h.Px, 1);
  EXPECT_GE(h.Pz, 1);
  EXPECT_GE(h.Uy, 1);
  EXPECT_GE(h.Uz, 1);
  EXPECT_GE(h.Fy, 1);
}

TEST(Params, ResolvedFillsAutos) {
  Params p;  // all auto
  const Params r = p.resolved(kDims, 16);
  EXPECT_TRUE(r.feasible(kDims, 16));
  EXPECT_EQ(r, Params::heuristic(kDims, 16).resolved(kDims, 16));
}

TEST(Params, ResolvedKeepsExplicitValues) {
  Params p;
  p.T = 32;
  p.W = 3;
  p.Fy = 64;
  const Params r = p.resolved(kDims, 16);
  EXPECT_EQ(r.T, 32);
  EXPECT_EQ(r.W, 3);
  EXPECT_EQ(r.Fy, 64);
  // Autos still filled.
  EXPECT_GE(r.Px, 1);
}

TEST(Params, ResolvedClampsOutOfRange) {
  Params p;
  p.T = 100000;   // > Nz
  p.Px = 100000;  // > Nx/p
  p.Pz = 100000;  // > T
  const Params r = p.resolved(kDims, 16);
  EXPECT_EQ(r.T, 256);
  EXPECT_EQ(r.Px, 16);
  EXPECT_EQ(r.Pz, r.T);
  EXPECT_TRUE(r.feasible(kDims, 16));
}

TEST(Params, FeasibilityConstraints) {
  Params p = Params::heuristic(kDims, 16).resolved(kDims, 16);
  EXPECT_TRUE(p.feasible(kDims, 16));

  Params bad = p;
  bad.Pz = bad.T + 1;  // §4.4's example: Pz must be <= T
  EXPECT_FALSE(bad.feasible(kDims, 16));

  bad = p;
  bad.T = 0;
  EXPECT_FALSE(bad.feasible(kDims, 16));

  bad = p;
  bad.T = 257;
  EXPECT_FALSE(bad.feasible(kDims, 16));

  bad = p;
  bad.Px = 17;  // > Nx/p = 16
  EXPECT_FALSE(bad.feasible(kDims, 16));

  bad = p;
  bad.Fy = -1;
  EXPECT_FALSE(bad.feasible(kDims, 16));

  bad = p;
  bad.Uz = bad.T + 5;
  EXPECT_FALSE(bad.feasible(kDims, 16));
}

TEST(Params, NonDivisibleBoundsUseCeil) {
  // Nx = 10, p = 4 -> slabs of 3,3,2,2: Px may reach 3.
  const Dims d{10, 9, 8};
  Params p = Params::heuristic(d, 4).resolved(d, 4);
  p.Px = 3;
  EXPECT_TRUE(p.feasible(d, 4));
  p.Px = 4;
  EXPECT_FALSE(p.feasible(d, 4));
}

TEST(Params, ToStringListsAllTen) {
  const Params p = Params::heuristic(kDims, 16);
  const std::string s = p.to_string();
  for (const char* key : {"T=", "W=", "Px=", "Pz=", "Uy=", "Uz=", "Fy=",
                          "Fp=", "Fu=", "Fx="})
    EXPECT_NE(s.find(key), std::string::npos) << key;
}

}  // namespace
}  // namespace offt::core
