// Cross-module integration tests: distributed spectral identities, a full
// Poisson solve through the public API, successive transforms on one
// array (the paper's motivating usage pattern), and engine edge
// parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "tests/core/test_helpers.hpp"

namespace offt::core {
namespace {

using testing::distributed_forward;
using testing::max_abs_diff;
using testing::random_global;
using testing::serial_forward;
using testing::tol_for;

TEST(Integration, DistributedParseval) {
  const Dims dims{12, 10, 8};
  const int p = 2;
  const fft::ComplexVector input = random_global(dims, 11);
  const fft::ComplexVector spectrum =
      distributed_forward(dims, p, {}, input);

  double time_energy = 0, freq_energy = 0;
  for (const auto& v : input) time_energy += std::norm(v);
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy,
              time_energy * static_cast<double>(dims.total()),
              1e-8 * freq_energy);
}

TEST(Integration, DistributedLinearity) {
  const Dims dims{8, 8, 6};
  const int p = 4;
  const fft::ComplexVector a = random_global(dims, 21);
  const fft::ComplexVector b = random_global(dims, 22);
  fft::ComplexVector combo(dims.total());
  const fft::Complex ca{0.5, -2.0}, cb{1.5, 0.25};
  for (std::size_t i = 0; i < combo.size(); ++i)
    combo[i] = ca * a[i] + cb * b[i];

  const fft::ComplexVector fa = distributed_forward(dims, p, {}, a);
  const fft::ComplexVector fb = distributed_forward(dims, p, {}, b);
  const fft::ComplexVector fc = distributed_forward(dims, p, {}, combo);
  double worst = 0;
  for (std::size_t i = 0; i < fc.size(); ++i)
    worst = std::max(worst, std::abs(fc[i] - (ca * fa[i] + cb * fb[i])));
  EXPECT_LT(worst, tol_for(dims));
}

TEST(Integration, PlaneWaveGivesSinglePeak) {
  const Dims dims{16, 16, 16};
  const int p = 4;
  const std::size_t mx = 3, my = 5, mz = 7;
  fft::ComplexVector wave(dims.total());
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j)
      for (std::size_t k = 0; k < 16; ++k) {
        const double ph = 2.0 * std::numbers::pi *
                          static_cast<double>(mx * i + my * j + mz * k) /
                          16.0;
        wave[(i * 16 + j) * 16 + k] = {std::cos(ph), std::sin(ph)};
      }
  const fft::ComplexVector spec = distributed_forward(dims, p, {}, wave);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j)
      for (std::size_t k = 0; k < 16; ++k) {
        const double expect =
            (i == mx && j == my && k == mz) ? 4096.0 : 0.0;
        EXPECT_NEAR(std::abs(spec[(i * 16 + j) * 16 + k]), expect, 1e-8);
      }
}

TEST(Integration, SpectralPoissonSolveThroughPublicApi) {
  // The poisson_solver example distilled into a test: solve lap(u) = f
  // for a manufactured solution and check the max error.
  const std::size_t n = 16;
  const Dims dims{n, n, n};
  const int p = 4;
  const double two_pi = 2.0 * std::numbers::pi;
  auto solution = [&](double x, double y, double z) {
    return std::sin(two_pi * x) * std::sin(two_pi * 2 * y) *
           std::cos(two_pi * z);
  };
  const double factor = -(two_pi * two_pi) * (1 + 4 + 1);

  DistributedField field(dims, p);
  const double h = 1.0 / static_cast<double>(n);
  field.fill_input([&](std::size_t i, std::size_t j, std::size_t k) {
    return fft::Complex{factor * solution(h * i, h * j, h * k), 0.0};
  });

  Plan3dOptions fo;
  fo.method = Method::New;
  const Plan3d fwd(dims, p, fo);
  Plan3dOptions bo = fo;
  bo.direction = fft::Direction::Backward;
  const Plan3d bwd(dims, p, bo);

  auto wavenumber = [&](std::size_t m) {
    const auto s = static_cast<long long>(m);
    return static_cast<double>(s <= static_cast<long long>(n) / 2
                                   ? s
                                   : s - static_cast<long long>(n));
  };
  const OutputLayout layout = fwd.output_layout();
  const Decomp& ydec = fwd.y_decomp();

  sim::Cluster cluster(p, sim::Platform::ideal());
  cluster.run([&](sim::Comm& comm) {
    const int r = comm.rank();
    fft::Complex* slab = field.slab(r);
    fwd.execute(comm, slab);
    const std::size_t yc = ydec.count(r), y0 = ydec.offset(r);
    const double inv_n3 = 1.0 / static_cast<double>(dims.total());
    for (std::size_t jl = 0; jl < yc; ++jl)
      for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = 0; i < n; ++i) {
          const double kx = two_pi * wavenumber(i);
          const double ky = two_pi * wavenumber(y0 + jl);
          const double kz = two_pi * wavenumber(k);
          const double k2 = kx * kx + ky * ky + kz * kz;
          const std::size_t idx = layout == OutputLayout::ZYX
                                      ? (k * yc + jl) * n + i
                                      : (jl * n + k) * n + i;
          slab[idx] *= (k2 == 0.0 ? 0.0 : -1.0 / k2) * inv_n3;
        }
    bwd.execute(comm, slab);
  });

  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        max_err = std::max(max_err,
                           std::abs(field.input_at(i, j, k).real() -
                                    solution(h * i, h * j, h * k)));
  EXPECT_LT(max_err, 1e-10);
}

TEST(Integration, SuccessiveTransformsOnOneArray) {
  // The usage pattern the paper optimizes for (§1): repeated forward +
  // backward transforms of a single array, as in time-stepping codes.
  const Dims dims{10, 12, 8};
  const int p = 2;
  const fft::ComplexVector orig = random_global(dims, 33);

  Plan3dOptions fo;
  fo.method = Method::New;
  const Plan3d fwd(dims, p, fo);
  Plan3dOptions bo = fo;
  bo.direction = fft::Direction::Backward;
  const Plan3d bwd(dims, p, bo);

  DistributedField field(dims, p);
  field.scatter_input(orig.data());
  const double inv = 1.0 / static_cast<double>(dims.total());

  sim::Cluster cluster(p, sim::Platform::umd_cluster());
  cluster.run([&](sim::Comm& comm) {
    fft::Complex* slab = field.slab(comm.rank());
    for (int step = 0; step < 4; ++step) {
      fwd.execute(comm, slab);
      bwd.execute(comm, slab);
      const std::size_t n = fwd.local_elements(comm.rank());
      fft::scale(slab, n, inv);
    }
  });

  fft::ComplexVector back(dims.total());
  field.gather_input(back.data());
  EXPECT_LT(max_abs_diff(back, orig), 4 * tol_for(dims));
}

TEST(Integration, WindowLargerThanTileCount) {
  // W = 8 with only 2 tiles: the pipeline must degrade gracefully.
  const Dims dims{8, 8, 8};
  const int p = 2;
  Params prm;
  prm.T = 4;  // two tiles
  prm.W = 8;
  Plan3dOptions opts;
  opts.method = Method::New;
  opts.params = prm;

  const fft::ComplexVector input = random_global(dims, 44);
  const fft::ComplexVector expect = serial_forward(dims, input);
  const fft::ComplexVector got = distributed_forward(dims, p, opts, input);
  EXPECT_LT(max_abs_diff(expect, got), tol_for(dims));
}

TEST(Integration, ExtremeTestFrequencies) {
  const Dims dims{8, 8, 8};
  const int p = 2;
  Params prm;
  prm.Fy = prm.Fp = prm.Fu = prm.Fx = 10000;  // far more tests than work
  Plan3dOptions opts;
  opts.method = Method::New;
  opts.params = prm;

  const fft::ComplexVector input = random_global(dims, 45);
  const fft::ComplexVector expect = serial_forward(dims, input);
  const fft::ComplexVector got = distributed_forward(dims, p, opts, input);
  EXPECT_LT(max_abs_diff(expect, got), tol_for(dims));
}

TEST(Integration, MakespanScalesDownWithMoreRanksOnIdealNetwork) {
  // With free communication, more ranks = less work per rank.
  const Dims dims{16, 16, 16};
  auto makespan = [&](int p) {
    const Plan3d plan(dims, p, {});
    DistributedField field(dims, p);
    field.fill_input([](std::size_t, std::size_t, std::size_t) {
      return fft::Complex{1.0, -1.0};
    });
    sim::Cluster cluster(p, sim::Platform::ideal());
    double t = 0;
    cluster.run([&](sim::Comm& comm) {
      const double t0 = comm.now();
      plan.execute(comm, field.slab(comm.rank()));
      const double dt = comm.allreduce_max(comm.now() - t0);
      if (comm.rank() == 0) t = dt;
    });
    return t;
  };
  const double t1 = makespan(1);
  const double t4 = makespan(4);
  EXPECT_LT(t4, t1);
}

}  // namespace
}  // namespace offt::core
