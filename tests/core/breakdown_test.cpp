#include "core/breakdown.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/cluster.hpp"

namespace offt::core {
namespace {

TEST(StepBreakdown, StartsEmpty) {
  const StepBreakdown bd;
  EXPECT_DOUBLE_EQ(bd.total(), 0.0);
  EXPECT_DOUBLE_EQ(bd[Step::Wait], 0.0);
}

TEST(StepBreakdown, AddAccumulates) {
  StepBreakdown bd;
  bd.add(Step::FFTy, 1.0);
  bd.add(Step::FFTy, 0.5);
  bd.add(Step::Wait, 2.0);
  EXPECT_DOUBLE_EQ(bd[Step::FFTy], 1.5);
  EXPECT_DOUBLE_EQ(bd.total(), 3.5);
}

TEST(StepBreakdown, OverlappableCompute) {
  StepBreakdown bd;
  bd.add(Step::FFTz, 10.0);       // not overlappable
  bd.add(Step::Transpose, 10.0);  // not overlappable
  bd.add(Step::FFTy, 1.0);
  bd.add(Step::Pack, 2.0);
  bd.add(Step::Unpack, 3.0);
  bd.add(Step::FFTx, 4.0);
  bd.add(Step::Wait, 100.0);
  EXPECT_DOUBLE_EQ(bd.overlappable_compute(), 10.0);
}

TEST(StepBreakdown, ArithmeticOperators) {
  StepBreakdown a, b;
  a.add(Step::Pack, 1.0);
  b.add(Step::Pack, 2.0);
  b.add(Step::Test, 4.0);
  a += b;
  EXPECT_DOUBLE_EQ(a[Step::Pack], 3.0);
  EXPECT_DOUBLE_EQ(a[Step::Test], 4.0);
  a *= 0.5;
  EXPECT_DOUBLE_EQ(a[Step::Pack], 1.5);
}

TEST(StepBreakdown, StepNamesMatchFigure8) {
  EXPECT_STREQ(step_name(Step::FFTz), "FFTz");
  EXPECT_STREQ(step_name(Step::Transpose), "Transpose");
  EXPECT_STREQ(step_name(Step::Ialltoall), "Ialltoall");
  EXPECT_STREQ(step_name(Step::Wait), "Wait");
  EXPECT_STREQ(step_name(Step::Test), "Test");
}

TEST(StepBreakdown, AveragedAcrossRanks) {
  sim::NetworkModel m;
  m.compute_scale = 0.0;
  sim::Cluster cluster(4, m);
  cluster.run([&](sim::Comm& comm) {
    StepBreakdown bd;
    bd.add(Step::Wait, static_cast<double>(comm.rank()));  // 0,1,2,3
    const StepBreakdown avg = bd.averaged(comm);
    EXPECT_DOUBLE_EQ(avg[Step::Wait], 1.5);
    EXPECT_DOUBLE_EQ(avg[Step::FFTz], 0.0);
  });
}

TEST(StepBreakdown, PrintShowsEveryStep) {
  StepBreakdown bd;
  bd.add(Step::FFTx, 0.25);
  std::ostringstream os;
  bd.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("FFTx"), std::string::npos);
  EXPECT_NE(s.find("0.250000"), std::string::npos);
  EXPECT_NE(s.find("total"), std::string::npos);
}

}  // namespace
}  // namespace offt::core
