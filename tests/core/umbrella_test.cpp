// Compile-and-link check of the umbrella header: one symbol from every
// public namespace.
#include "offt.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryNamespaceIsReachable) {
  using namespace offt;

  const fft::Plan1d plan(8, fft::Direction::Forward);
  EXPECT_EQ(plan.size(), 8u);

  const sim::Platform platform = sim::Platform::ideal();
  sim::Cluster cluster(2, platform);
  EXPECT_EQ(cluster.size(), 2);

  tune::SearchSpace space;
  space.add("x", {1, 2, 3});
  EXPECT_EQ(space.dims(), 1u);

  const core::Plan3d plan3d({8, 8, 8}, 2, {});
  EXPECT_EQ(plan3d.nranks(), 2);
  EXPECT_STREQ(core::to_string(plan3d.method()), "NEW");
}

}  // namespace
