// Shared helpers for the core test suites: run a distributed transform on
// an ideal-network cluster and compare against the serial reference.
#pragma once

#include <gtest/gtest.h>

#include "core/plan3d.hpp"
#include "fft/reference.hpp"
#include "util/rng.hpp"

namespace offt::core::testing {

inline fft::ComplexVector random_global(const Dims& dims,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  fft::ComplexVector g(dims.total());
  for (auto& v : g) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return g;
}

inline double max_abs_diff(const fft::ComplexVector& a,
                           const fft::ComplexVector& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

inline double tol_for(const Dims& dims) {
  return 1e-11 * static_cast<double>(dims.total());
}

// Scatter -> distributed forward execute -> gather (x-y-z order).
inline fft::ComplexVector distributed_forward(const Dims& dims, int p,
                                              Plan3dOptions opts,
                                              const fft::ComplexVector& input,
                                              StepBreakdown* bd = nullptr) {
  opts.direction = fft::Direction::Forward;
  const Plan3d plan(dims, p, opts);
  DistributedField field(dims, p);
  field.scatter_input(input.data());

  sim::Cluster cluster(p, sim::Platform::ideal());
  cluster.run([&](sim::Comm& comm) {
    StepBreakdown local;
    plan.execute(comm, field.slab(comm.rank()), &local);
    if (bd && comm.rank() == 0) *bd = local;
  });

  fft::ComplexVector out(dims.total());
  field.gather_output(out.data(), plan.output_layout());
  return out;
}

inline fft::ComplexVector serial_forward(const Dims& dims,
                                         const fft::ComplexVector& input) {
  fft::ComplexVector ref = input;
  fft::fft3d_serial(ref.data(), dims.nx, dims.ny, dims.nz,
                    fft::Direction::Forward);
  return ref;
}

}  // namespace offt::core::testing
