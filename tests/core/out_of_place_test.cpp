// Out-of-place transforms (§2.3): the result matches the in-place path
// and the input is left untouched.
#include <gtest/gtest.h>

#include "tests/core/test_helpers.hpp"

namespace offt::core {
namespace {

using testing::max_abs_diff;
using testing::random_global;

TEST(OutOfPlace, MatchesInPlaceAndPreservesInput) {
  const Dims dims{8, 12, 10};
  const int p = 2;
  const fft::ComplexVector input = random_global(dims, 71);

  const Plan3d plan(dims, p, {});
  DistributedField in_field(dims, p), out_field(dims, p);
  in_field.scatter_input(input.data());
  DistributedField pristine(dims, p);
  pristine.scatter_input(input.data());

  sim::Cluster cluster(p, sim::Platform::ideal());
  cluster.run([&](sim::Comm& comm) {
    const int r = comm.rank();
    plan.execute(comm, in_field.slab(r), out_field.slab(r));
  });

  // Input slabs untouched.
  for (int r = 0; r < p; ++r) {
    const std::size_t n = plan.input_elements(r);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(in_field.slab(r)[i], pristine.slab(r)[i]) << "rank " << r;
  }

  // Output matches the in-place transform.
  DistributedField ip_field(dims, p);
  ip_field.scatter_input(input.data());
  cluster.run([&](sim::Comm& comm) {
    plan.execute(comm, ip_field.slab(comm.rank()));
  });
  fft::ComplexVector a(dims.total()), b(dims.total());
  out_field.gather_output(a.data(), plan.output_layout());
  ip_field.gather_output(b.data(), plan.output_layout());
  EXPECT_LT(max_abs_diff(a, b), 1e-14);
}

TEST(OutOfPlace, BackwardToo) {
  const Dims dims{8, 8, 8};
  const int p = 2;
  const fft::ComplexVector input = random_global(dims, 72);

  Plan3dOptions fo;
  const Plan3d fwd(dims, p, fo);
  Plan3dOptions bo = fo;
  bo.direction = fft::Direction::Backward;
  const Plan3d bwd(dims, p, bo);

  DistributedField field(dims, p), spec(dims, p), back(dims, p);
  field.scatter_input(input.data());

  sim::Cluster cluster(p, sim::Platform::ideal());
  cluster.run([&](sim::Comm& comm) {
    const int r = comm.rank();
    fwd.execute(comm, field.slab(r), spec.slab(r));
    bwd.execute(comm, spec.slab(r), back.slab(r));
  });

  fft::ComplexVector result(dims.total());
  back.gather_input(result.data());
  const double inv = 1.0 / static_cast<double>(dims.total());
  for (auto& v : result) v *= inv;
  EXPECT_LT(max_abs_diff(result, input), 1e-11);
}

TEST(OutOfPlace, RejectsAliasedBuffers) {
  const Plan3d plan({8, 8, 8}, 2, {});
  sim::Cluster cluster(2, sim::Platform::ideal());
  EXPECT_THROW(cluster.run([&](sim::Comm& comm) {
                 fft::ComplexVector buf(plan.local_elements(comm.rank()));
                 plan.execute(comm, buf.data(), buf.data());
               }),
               std::logic_error);
}

TEST(OutOfPlace, InputElements) {
  const Plan3d fwd({10, 9, 8}, 4, {});
  EXPECT_EQ(fwd.input_elements(0), 3u * 9 * 8);
  EXPECT_EQ(fwd.input_elements(3), 2u * 9 * 8);
  Plan3dOptions bo;
  bo.direction = fft::Direction::Backward;
  const Plan3d bwd({10, 9, 8}, 4, bo);
  EXPECT_EQ(bwd.input_elements(0), 3u * 8 * 10);  // y-slab
}

}  // namespace
}  // namespace offt::core
