// Correctness of the 2-D (pencil) decomposition against the serial
// reference, across process grids and shapes, plus the group-collective
// machinery it relies on.
#include "core/pencil3d.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.hpp"

namespace offt::core {
namespace {

using testing::max_abs_diff;
using testing::random_global;
using testing::serial_forward;
using testing::tol_for;

struct GridCase {
  Dims dims;
  int rows, cols;

  friend std::ostream& operator<<(std::ostream& os, const GridCase& c) {
    return os << c.rows << "x" << c.cols << "_" << c.dims.nx << "x"
              << c.dims.ny << "x" << c.dims.nz;
  }
};

fft::ComplexVector pencil_forward(const Dims& dims, int rows, int cols,
                                  const fft::ComplexVector& input) {
  const Pencil3d plan(dims, rows, cols);
  const int p = plan.nranks();

  // Scatter into per-rank pencils.
  std::vector<fft::ComplexVector> slabs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    slabs[static_cast<std::size_t>(r)].assign(plan.local_elements(r),
                                              fft::Complex{0, 0});
  for (std::size_t i = 0; i < dims.nx; ++i)
    for (std::size_t j = 0; j < dims.ny; ++j)
      for (std::size_t k = 0; k < dims.nz; ++k) {
        const int owner = plan.input_owner(i, j);
        slabs[static_cast<std::size_t>(owner)][plan.input_index(owner, i, j,
                                                                k)] =
            input[(i * dims.ny + j) * dims.nz + k];
      }

  sim::Cluster cluster(p, sim::Platform::ideal());
  cluster.run([&](sim::Comm& comm) {
    plan.execute(comm, slabs[static_cast<std::size_t>(comm.rank())].data());
  });

  fft::ComplexVector out(dims.total());
  for (std::size_t i = 0; i < dims.nx; ++i)
    for (std::size_t j = 0; j < dims.ny; ++j)
      for (std::size_t k = 0; k < dims.nz; ++k) {
        const int owner = plan.output_owner(j, k);
        out[(i * dims.ny + j) * dims.nz + k] =
            slabs[static_cast<std::size_t>(owner)]
                 [plan.output_index(owner, i, j, k)];
      }
  return out;
}

class PencilMatrix : public ::testing::TestWithParam<GridCase> {};

TEST_P(PencilMatrix, MatchesSerialReference) {
  const auto [dims, rows, cols] = GetParam();
  const fft::ComplexVector input = random_global(dims, 55 + dims.total());
  const fft::ComplexVector expect = serial_forward(dims, input);
  const fft::ComplexVector got = pencil_forward(dims, rows, cols, input);
  EXPECT_LT(max_abs_diff(expect, got), tol_for(dims));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PencilMatrix,
    ::testing::Values(GridCase{{8, 8, 8}, 2, 2}, GridCase{{8, 8, 8}, 1, 1},
                      GridCase{{8, 8, 8}, 1, 4}, GridCase{{8, 8, 8}, 4, 1},
                      GridCase{{12, 12, 12}, 2, 3},
                      GridCase{{12, 12, 12}, 3, 2},
                      GridCase{{8, 12, 10}, 2, 2},
                      GridCase{{10, 9, 8}, 2, 2},    // non-divisible
                      GridCase{{9, 10, 7}, 3, 2},    // very ragged
                      GridCase{{16, 16, 16}, 4, 4}));

TEST(Pencil3d, SupportsMoreRanksThanSlabDecomposition) {
  // The §2.2 scalability argument: with N = 8 the slab decomposition
  // caps at 8 ranks; the pencil grid runs 4x4 = 16.
  const Dims dims{8, 8, 8};
  EXPECT_THROW(Plan3d(dims, 16, {}), std::logic_error);
  const fft::ComplexVector input = random_global(dims, 77);
  const fft::ComplexVector expect = serial_forward(dims, input);
  const fft::ComplexVector got = pencil_forward(dims, 4, 4, input);
  EXPECT_LT(max_abs_diff(expect, got), tol_for(dims));
}

TEST(Pencil3d, GeometryAccessors) {
  const Pencil3d plan({12, 10, 8}, 2, 2);
  EXPECT_EQ(plan.nranks(), 4);
  EXPECT_EQ(plan.row_of(3), 1);
  EXPECT_EQ(plan.col_of(3), 1);
  EXPECT_EQ(plan.x_decomp().count(0), 6u);
  EXPECT_EQ(plan.y_in_decomp().count(0), 5u);
  EXPECT_EQ(plan.z_decomp().count(0), 4u);
  EXPECT_EQ(plan.y_out_decomp().count(0), 5u);
  for (int r = 0; r < 4; ++r) EXPECT_GT(plan.local_elements(r), 0u);
}

TEST(Pencil3d, ValidatesArguments) {
  EXPECT_THROW(Pencil3d({8, 8, 8}, 0, 2), std::logic_error);
  EXPECT_THROW(Pencil3d({4, 8, 8}, 8, 1), std::logic_error);  // Nx < rows
  EXPECT_THROW(Pencil3d({8, 8, 4}, 1, 8), std::logic_error);  // Nz < cols
  EXPECT_THROW(Pencil3d({8, 8, 8}, 2, 2, fft::Direction::Backward),
               std::logic_error);

  const Pencil3d plan({8, 8, 8}, 2, 2);
  sim::Cluster wrong(2, sim::Platform::ideal());
  EXPECT_THROW(wrong.run([&](sim::Comm& comm) {
                 fft::ComplexVector buf(plan.local_elements(0));
                 plan.execute(comm, buf.data());
               }),
               std::logic_error);
}

TEST(GroupAlltoall, SubgroupExchangeIsIsolated) {
  // Two disjoint row groups exchange concurrently; payloads must not
  // bleed between groups.
  const int p = 4;
  sim::NetworkModel m;
  m.compute_scale = 0.0;
  sim::Cluster cluster(p, m);
  std::vector<std::vector<int>> results(p);
  cluster.run([&](sim::Comm& comm) {
    const int r = comm.rank();
    const std::vector<int> group =
        r < 2 ? std::vector<int>{0, 1} : std::vector<int>{2, 3};
    const int pos = r % 2;
    std::vector<int> send(2), recv(2, -1);
    for (int d = 0; d < 2; ++d) send[d] = 100 * r + d;
    comm.alltoall_group(group, send.data(), recv.data(), sizeof(int));
    // recv[s] came from group member s: value 100*member + my_pos.
    EXPECT_EQ(recv[0], 100 * group[0] + pos);
    EXPECT_EQ(recv[1], 100 * group[1] + pos);
    results[r] = recv;
  });
}

TEST(GroupAlltoall, NonMemberCallerThrows) {
  sim::NetworkModel m;
  m.compute_scale = 0.0;
  sim::Cluster cluster(3, m);
  EXPECT_THROW(cluster.run([&](sim::Comm& comm) {
                 if (comm.rank() == 2) {
                   int v = 0;
                   const std::vector<int> group{0, 1};
                   comm.alltoall_group(group, &v, &v, sizeof(int));
                 }
               }),
               std::logic_error);
}

TEST(GroupAlltoall, SingletonGroupIsSelfCopy) {
  sim::NetworkModel m;
  m.compute_scale = 0.0;
  sim::Cluster cluster(2, m);
  cluster.run([&](sim::Comm& comm) {
    const std::vector<int> group{comm.rank()};
    const int v = 42 + comm.rank();
    int out = 0;
    comm.alltoall_group(group, &v, &out, sizeof(int));
    EXPECT_EQ(out, 42 + comm.rank());
  });
}

}  // namespace
}  // namespace offt::core
