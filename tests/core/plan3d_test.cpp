// End-to-end correctness of every pipeline variant against the serial
// 3-D FFT reference, across cluster sizes, shapes (square and not,
// divisible and not) and parameter settings.
#include "core/plan3d.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.hpp"

namespace offt::core {
namespace {

using testing::distributed_forward;
using testing::max_abs_diff;
using testing::random_global;
using testing::serial_forward;
using testing::tol_for;

struct Case {
  Dims dims;
  int p;
  Method method;

  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << to_string(c.method) << "_p" << c.p << "_" << c.dims.nx << "x"
              << c.dims.ny << "x" << c.dims.nz;
  }
};

class ForwardMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(ForwardMatrix, MatchesSerialReference) {
  const auto [dims, p, method] = GetParam();
  const fft::ComplexVector input = random_global(dims, 42 + dims.total());
  const fft::ComplexVector expect = serial_forward(dims, input);

  Plan3dOptions opts;
  opts.method = method;
  const fft::ComplexVector got = distributed_forward(dims, p, opts, input);
  EXPECT_LT(max_abs_diff(expect, got), tol_for(dims));
}

std::vector<Case> forward_cases() {
  std::vector<Case> cases;
  const std::vector<std::pair<Dims, int>> shapes = {
      {{8, 8, 8}, 1},    {{8, 8, 8}, 2},    {{8, 8, 8}, 4},
      {{16, 16, 16}, 4}, {{8, 12, 10}, 2},  {{12, 8, 6}, 4},
      {{10, 9, 8}, 3},   {{10, 9, 8}, 4},   // non-divisible
      {{9, 10, 5}, 3},                      // Ny non-divisible only
      {{16, 16, 12}, 8},
  };
  for (const auto& [dims, p] : shapes)
    for (const Method m : {Method::New, Method::New0, Method::Th, Method::Th0,
                           Method::FftwLike})
      cases.push_back({dims, p, m});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ForwardMatrix,
                         ::testing::ValuesIn(forward_cases()));

class ParamSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParamSweep, RandomFeasibleParamsNeverChangeTheAnswer) {
  // The ten parameters tune performance; correctness must be invariant.
  const Dims dims{12, 16, 14};
  const int p = 4;
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);

  Params prm;
  prm.T = rng.uniform_int(1, static_cast<long long>(dims.nz));
  prm.W = rng.uniform_int(0, 5);
  prm.Px = rng.uniform_int(1, 3);
  prm.Pz = rng.uniform_int(1, prm.T);
  prm.Uy = rng.uniform_int(1, 4);
  prm.Uz = rng.uniform_int(1, prm.T);
  prm.Fy = rng.uniform_int(0, 16);
  prm.Fp = rng.uniform_int(0, 16);
  prm.Fu = rng.uniform_int(0, 16);
  prm.Fx = rng.uniform_int(0, 16);
  ASSERT_TRUE(prm.feasible(dims, p)) << prm.to_string();

  const fft::ComplexVector input = random_global(dims, 7);
  const fft::ComplexVector expect = serial_forward(dims, input);

  Plan3dOptions opts;
  opts.method = Method::New;
  opts.params = prm;
  const fft::ComplexVector got = distributed_forward(dims, p, opts, input);
  EXPECT_LT(max_abs_diff(expect, got), tol_for(dims)) << prm.to_string();
}

INSTANTIATE_TEST_SUITE_P(Random, ParamSweep, ::testing::Range(0, 16));

TEST(Plan3d, SquareFastPathActivatesExactlyWhenValid) {
  Plan3dOptions opts;
  opts.method = Method::New;
  EXPECT_TRUE(Plan3d({8, 8, 4}, 2, opts).square_fast_path());
  EXPECT_EQ(Plan3d({8, 8, 4}, 2, opts).output_layout(), OutputLayout::YZX);
  // Not square.
  EXPECT_FALSE(Plan3d({8, 12, 4}, 2, opts).square_fast_path());
  // Square but ragged decomposition.
  EXPECT_FALSE(Plan3d({9, 9, 4}, 2, opts).square_fast_path());
  // Explicitly disabled.
  opts.square_path = Plan3dOptions::SquarePath::Off;
  EXPECT_FALSE(Plan3d({8, 8, 4}, 2, opts).square_fast_path());
  EXPECT_EQ(Plan3d({8, 8, 4}, 2, opts).output_layout(), OutputLayout::ZYX);
  // TH never uses it.
  opts.square_path = Plan3dOptions::SquarePath::Auto;
  opts.method = Method::Th;
  EXPECT_FALSE(Plan3d({8, 8, 4}, 2, opts).square_fast_path());
  opts.method = Method::FftwLike;
  EXPECT_FALSE(Plan3d({8, 8, 4}, 2, opts).square_fast_path());
}

TEST(Plan3d, SquarePathOnAndOffAgree) {
  const Dims dims{12, 12, 8};
  const int p = 4;
  const fft::ComplexVector input = random_global(dims, 9);

  Plan3dOptions on;
  on.method = Method::New;
  Plan3dOptions off = on;
  off.square_path = Plan3dOptions::SquarePath::Off;

  const fft::ComplexVector a = distributed_forward(dims, p, on, input);
  const fft::ComplexVector b = distributed_forward(dims, p, off, input);
  EXPECT_LT(max_abs_diff(a, b), 1e-12);
}

class RoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(RoundTrip, BackwardInvertsForward) {
  const auto [dims, p, method] = GetParam();
  const fft::ComplexVector input = random_global(dims, 1000 + dims.total());

  Plan3dOptions fwd_opts;
  fwd_opts.method = method;
  fwd_opts.direction = fft::Direction::Forward;
  const Plan3d fwd(dims, p, fwd_opts);

  Plan3dOptions bwd_opts = fwd_opts;
  bwd_opts.direction = fft::Direction::Backward;
  const Plan3d bwd(dims, p, bwd_opts);
  ASSERT_EQ(fwd.output_layout(), bwd.output_layout());

  DistributedField field(dims, p);
  field.scatter_input(input.data());
  sim::Cluster cluster(p, sim::Platform::ideal());
  cluster.run([&](sim::Comm& comm) {
    fft::Complex* slab = field.slab(comm.rank());
    fwd.execute(comm, slab);
    bwd.execute(comm, slab);
  });

  fft::ComplexVector back(dims.total());
  field.gather_input(back.data());
  const double inv = 1.0 / static_cast<double>(dims.total());
  for (auto& v : back) v *= inv;
  EXPECT_LT(max_abs_diff(back, input), tol_for(dims));
}

INSTANTIATE_TEST_SUITE_P(
    Methods, RoundTrip,
    ::testing::Values(Case{{8, 8, 8}, 4, Method::New},
                      Case{{8, 8, 8}, 2, Method::New},     // square fast path
                      Case{{8, 12, 10}, 2, Method::New},   // rectangular
                      Case{{10, 9, 8}, 3, Method::New},    // non-divisible
                      Case{{8, 12, 10}, 4, Method::New0},
                      Case{{8, 12, 10}, 2, Method::FftwLike},
                      Case{{12, 8, 6}, 4, Method::Th},
                      Case{{16, 16, 12}, 8, Method::New}));

TEST(Plan3d, TunableSectionEqualsFullExecuteAfterPretransform) {
  const Dims dims{8, 12, 10};
  const int p = 2;
  const fft::ComplexVector input = random_global(dims, 31);

  Plan3dOptions opts;
  opts.method = Method::New;
  const Plan3d plan(dims, p, opts);

  // Path A: full execute.
  const fft::ComplexVector full =
      distributed_forward(dims, p, opts, input);

  // Path B: serial pretransform, then only the tunable section.
  DistributedField field(dims, p);
  field.scatter_input(input.data());
  for (int r = 0; r < p; ++r) plan.run_pretransform(field.slab(r), r);
  sim::Cluster cluster(p, sim::Platform::ideal());
  cluster.run([&](sim::Comm& comm) {
    plan.execute_tunable_section(comm, field.slab(comm.rank()));
  });
  fft::ComplexVector sectioned(dims.total());
  field.gather_output(sectioned.data(), plan.output_layout());

  EXPECT_LT(max_abs_diff(full, sectioned), 1e-12);
}

TEST(Plan3d, BreakdownCoversWholeExecution) {
  const Dims dims{16, 16, 16};
  const int p = 4;
  const fft::ComplexVector input = random_global(dims, 77);

  const Plan3d plan(dims, p, {});
  DistributedField field(dims, p);
  field.scatter_input(input.data());

  sim::Cluster cluster(p, sim::Platform::umd_cluster());
  cluster.run([&](sim::Comm& comm) {
    StepBreakdown bd;
    const double t0 = comm.now();
    plan.execute(comm, field.slab(comm.rank()), &bd);
    const double elapsed = comm.now() - t0;
    // Every step category is timed contiguously, so the parts must add up
    // to the whole (small slack for the untimed glue between sections).
    EXPECT_LE(bd.total(), elapsed * 1.001 + 1e-9);
    EXPECT_GE(bd.total(), elapsed * 0.90);
    EXPECT_GT(bd[Step::FFTz], 0.0);
    EXPECT_GT(bd[Step::FFTy], 0.0);
    EXPECT_GT(bd[Step::Wait] + bd[Step::Ialltoall], 0.0);
  });
}

TEST(Plan3d, BreakdownTestTimeAppearsOnlyWithPolling) {
  const Dims dims{16, 16, 16};
  const int p = 2;
  const fft::ComplexVector input = random_global(dims, 78);

  auto run_with = [&](Method m, long long f) {
    Plan3dOptions opts;
    opts.method = m;
    opts.params.Fy = opts.params.Fp = opts.params.Fu = opts.params.Fx = f;
    const Plan3d plan(dims, p, opts);
    DistributedField field(dims, p);
    field.scatter_input(input.data());
    StepBreakdown out;
    sim::Cluster cluster(p, sim::Platform::umd_cluster());
    cluster.run([&](sim::Comm& comm) {
      StepBreakdown bd;
      plan.execute(comm, field.slab(comm.rank()), &bd);
      if (comm.rank() == 0) out = bd;
    });
    return out;
  };

  EXPECT_GT(run_with(Method::New, 8)[Step::Test], 0.0);
  EXPECT_EQ(run_with(Method::New0, 8)[Step::Test], 0.0);  // NEW-0 never polls
  EXPECT_EQ(run_with(Method::FftwLike, 8)[Step::Test], 0.0);
}

TEST(Plan3d, ValidatesArguments) {
  EXPECT_THROW(Plan3d({0, 8, 8}, 2, {}), std::logic_error);
  EXPECT_THROW(Plan3d({8, 8, 8}, 0, {}), std::logic_error);
  EXPECT_THROW(Plan3d({2, 8, 8}, 4, {}), std::logic_error);  // Nx < p

  const Plan3d plan({8, 8, 8}, 2, {});
  sim::Cluster wrong(3, sim::Platform::ideal());
  EXPECT_THROW(wrong.run([&](sim::Comm& comm) {
                 fft::ComplexVector slab(plan.local_elements(comm.rank()));
                 plan.execute(comm, slab.data());
               }),
               std::logic_error);
}

TEST(Plan3d, SingleRankWorks) {
  const Dims dims{6, 5, 7};
  const fft::ComplexVector input = random_global(dims, 3);
  const fft::ComplexVector expect = serial_forward(dims, input);
  Plan3dOptions opts;
  opts.method = Method::New;
  const fft::ComplexVector got = distributed_forward(dims, 1, opts, input);
  EXPECT_LT(max_abs_diff(expect, got), tol_for(dims));
}

TEST(Plan3d, LocalElementsAccountsForBothSlabs) {
  const Plan3d plan({10, 9, 8}, 4, {});
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(plan.local_elements(r),
              plan.x_decomp().count(r) * 9u * 8u);
    EXPECT_GE(plan.local_elements(r),
              plan.y_decomp().count(r) * 8u * 10u);
  }
}

TEST(Plan3d, MethodNames) {
  EXPECT_STREQ(to_string(Method::New), "NEW");
  EXPECT_STREQ(to_string(Method::FftwLike), "FFTW");
  EXPECT_EQ(method_by_name("th0"), Method::Th0);
  EXPECT_EQ(method_by_name("fftw"), Method::FftwLike);
  EXPECT_THROW(method_by_name("p3dfft"), std::logic_error);
}

}  // namespace
}  // namespace offt::core
