#include "core/fft_tuner.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.hpp"

namespace offt::core {
namespace {

const Dims kDims{16, 16, 16};
constexpr int kRanks = 4;

TEST(FftTuneSpace, NewHasTenDimensionsThHasThree) {
  EXPECT_EQ(make_tune_space(kDims, kRanks, Method::New).space.dims(), 10u);
  EXPECT_EQ(make_tune_space(kDims, kRanks, Method::Th).space.dims(), 3u);
}

TEST(FftTuneSpace, TileCandidatesAreLogScaled) {
  const FftTuneSpace ts = make_tune_space({256, 256, 24}, kRanks, Method::New);
  // §4.4's worked example: Nz = 24 -> T in {1, 2, 4, 8, 16, 24}.
  EXPECT_EQ(ts.space.param(ts.space.index_of("T")).values,
            (std::vector<long long>{1, 2, 4, 8, 16, 24}));
}

TEST(FftTuneSpace, WindowIsNotLogScaled) {
  const FftTuneSpace ts = make_tune_space(kDims, kRanks, Method::New);
  EXPECT_EQ(ts.space.param(ts.space.index_of("W")).values,
            (std::vector<long long>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(FftTuneSpace, ConfigParamsRoundTrip) {
  const FftTuneSpace ts = make_tune_space(kDims, kRanks, Method::New);
  Params p = Params::heuristic(kDims, kRanks).resolved(kDims, kRanks);
  EXPECT_EQ(ts.to_params(ts.to_config(p)), p);
}

TEST(FftTuneSpace, ConstraintRejectsCrossParameterViolations) {
  const FftTuneSpace ts = make_tune_space(kDims, kRanks, Method::New);
  Params good = Params::heuristic(kDims, kRanks).resolved(kDims, kRanks);
  EXPECT_TRUE(ts.constraint(ts.to_config(good)));

  Params bad = good;
  bad.Pz = bad.T * 2;  // Pz > T
  EXPECT_FALSE(ts.constraint(ts.to_config(bad)));
}

TEST(FftTuneSpace, InitialSimplexIsDefaultPlusAxisSteps) {
  const FftTuneSpace ts = make_tune_space(kDims, kRanks, Method::New);
  ASSERT_EQ(ts.initial_simplex.size(), 11u);  // 10 dims + 1
  const tune::Config& def = ts.initial_simplex[0];
  for (std::size_t d = 0; d < 10; ++d) {
    int differing = 0;
    for (std::size_t i = 0; i < 10; ++i)
      differing += (ts.initial_simplex[d + 1][i] != def[i]) ? 1 : 0;
    EXPECT_LE(differing, 1) << "vertex " << d + 1;
  }
}

TEST(FftTuneSpace, DefaultPointFollowsHeuristic) {
  const FftTuneSpace ts = make_tune_space(kDims, kRanks, Method::New);
  const Params def = ts.to_params(ts.initial_simplex[0]);
  // Snapped to the reduced space, so exact equality holds where the
  // heuristic value is itself a candidate.
  EXPECT_EQ(def.W, 2);
  EXPECT_EQ(def.T, 1);  // Nz/16 = 1 for Nz = 16
  EXPECT_EQ(def.Fy, kRanks / 2);
}

TEST(FftTuner, ObjectiveRunsAndIsPositive) {
  sim::Cluster cluster(kRanks, sim::Platform::umd_cluster());
  const FftTuneSpace ts = make_tune_space(kDims, kRanks, Method::New);
  FftTuneOptions opts;
  const tune::Objective obj = make_fft3d_objective(cluster, ts, opts);
  const double t =
      obj(ts.to_config(Params::heuristic(kDims, kRanks).resolved(kDims, kRanks)));
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 60.0);
}

TEST(FftTuner, TuningFindsFeasibleParamsAndImproves) {
  sim::Cluster cluster(kRanks, sim::Platform::umd_cluster());
  FftTuneOptions opts;
  opts.max_evaluations = 12;
  const FftTuneResult res = tune_fft3d(cluster, kDims, Method::New, opts);
  EXPECT_TRUE(res.best_params.feasible(kDims, kRanks));
  EXPECT_GT(res.best_seconds, 0.0);
  EXPECT_GT(res.outcome.search.evaluations, 0);
  EXPECT_LE(res.outcome.search.evaluations, 12);
  // The best found must be at least as good as the first point tried.
  ASSERT_FALSE(res.outcome.search.trace.empty());
  EXPECT_LE(res.best_seconds, res.outcome.search.trace.front());
}

TEST(FftTuner, ThTuningUsesThreeParams) {
  sim::Cluster cluster(kRanks, sim::Platform::umd_cluster());
  FftTuneOptions opts;
  opts.max_evaluations = 8;
  const FftTuneResult res = tune_fft3d(cluster, kDims, Method::Th, opts);
  EXPECT_TRUE(res.best_params.feasible(kDims, kRanks));
  EXPECT_GT(res.best_seconds, 0.0);
}

TEST(FftTuner, TunedResultStillComputesCorrectFft) {
  sim::Cluster cluster(kRanks, sim::Platform::umd_cluster());
  FftTuneOptions opts;
  opts.max_evaluations = 6;
  const FftTuneResult res = tune_fft3d(cluster, kDims, Method::New, opts);

  const fft::ComplexVector input = testing::random_global(kDims, 5);
  const fft::ComplexVector expect = testing::serial_forward(kDims, input);
  Plan3dOptions popts;
  popts.method = Method::New;
  popts.params = res.best_params;
  const fft::ComplexVector got =
      testing::distributed_forward(kDims, kRanks, popts, input);
  EXPECT_LT(testing::max_abs_diff(expect, got), testing::tol_for(kDims));
}

}  // namespace
}  // namespace offt::core
