// Scheduler-level behaviour: virtual clock charging, determinism,
// deadlock detection, exception propagation, reuse of a Cluster.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/cluster.hpp"

namespace offt::sim {
namespace {

NetworkModel exact_model() {
  NetworkModel m;
  m.inter = {1.0, 100.0};
  m.intra = m.inter;
  m.injection_overhead = 0.1;
  m.test_overhead = 0.0;
  m.congestion = 0.0;
  m.compute_scale = 0.0;
  return m;
}

TEST(Scheduler, AdvanceMovesVirtualClock) {
  Cluster cluster(1, exact_model());
  const RunResult res = cluster.run([&](Comm& comm) {
    EXPECT_NEAR(comm.now(), 0.0, 1e-9);
    comm.advance(2.5);
    EXPECT_NEAR(comm.now(), 2.5, 1e-9);
    comm.advance(0.5);
    EXPECT_NEAR(comm.now(), 3.0, 1e-9);
  });
  EXPECT_NEAR(res.makespan, 3.0, 1e-9);
  ASSERT_EQ(res.rank_times.size(), 1u);
}

TEST(Scheduler, AdvanceRejectsNegative) {
  Cluster cluster(1, exact_model());
  EXPECT_THROW(cluster.run([](Comm& comm) { comm.advance(-1.0); }),
               std::logic_error);
}

TEST(Scheduler, RealComputeIsChargedWhenScaled) {
  NetworkModel m = exact_model();
  m.compute_scale = 1.0;
  Cluster cluster(1, m);
  const RunResult res = cluster.run([&](Comm& comm) {
    // Burn a measurable amount of CPU.
    volatile double sink = 0;
    for (int i = 0; i < 20000000; ++i) sink = sink + 1e-9;
    comm.advance(0.0);  // flush the measured segment into the clock
  });
  EXPECT_GT(res.makespan, 1e-3);  // 2e7 iterations take >> 1 ms
}

TEST(Scheduler, ComputeScaleZeroIgnoresRealCompute) {
  Cluster cluster(1, exact_model());
  const RunResult res = cluster.run([&](Comm& comm) {
    volatile double sink = 0;
    for (int i = 0; i < 5000000; ++i) sink = sink + 1e-9;
    comm.advance(0.0);
  });
  EXPECT_DOUBLE_EQ(res.makespan, 0.0);
}

TEST(Scheduler, DeterministicVirtualTimesAcrossRuns) {
  const int p = 6;
  auto program = [](Comm& comm) {
    const int r = comm.rank();
    comm.advance(0.01 * r);
    std::vector<int> send(comm.size()), recv(comm.size());
    for (int d = 0; d < comm.size(); ++d) send[d] = r + d;
    Request req = comm.ialltoall(send.data(), recv.data(), sizeof(int));
    comm.advance(0.5);
    comm.test(req);
    comm.advance(0.5);
    comm.wait(req);
    comm.barrier();
  };
  Cluster cluster(p, exact_model());
  const RunResult a = cluster.run(program);
  const RunResult b = cluster.run(program);
  ASSERT_EQ(a.rank_times.size(), b.rank_times.size());
  for (int r = 0; r < p; ++r)
    EXPECT_DOUBLE_EQ(a.rank_times[r], b.rank_times[r]) << "rank " << r;
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Scheduler, DeadlockIsDetected) {
  Cluster cluster(2, exact_model());
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 int v = 0;
                 // Both ranks receive; nobody sends.
                 comm.recv(&v, sizeof(v), 1 - comm.rank(), 0);
               }),
               DeadlockError);
}

TEST(Scheduler, DeadlockMessageNamesBlockedRanks) {
  Cluster cluster(3, exact_model());
  try {
    cluster.run([](Comm& comm) {
      if (comm.rank() == 1) {
        int v = 0;
        comm.recv(&v, sizeof(v), 2, 0);  // never sent
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

TEST(Scheduler, RankExceptionPropagates) {
  Cluster cluster(4, exact_model());
  try {
    cluster.run([](Comm& comm) {
      comm.advance(0.1);
      if (comm.rank() == 2) throw std::runtime_error("boom from rank 2");
      comm.barrier();  // others block; must be unwound by the abort
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom from rank 2");
  }
}

TEST(Scheduler, ClusterIsReusableAfterError) {
  Cluster cluster(2, exact_model());
  EXPECT_THROW(cluster.run([](Comm&) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // A clean run afterwards works and starts from fresh clocks.
  const RunResult res = cluster.run([](Comm& comm) { comm.advance(1.0); });
  EXPECT_NEAR(res.makespan, 1.0, 1e-12);
}

TEST(Scheduler, ManyRanksComplete) {
  const int p = 64;
  Cluster cluster(p, exact_model());
  std::atomic<int> ran{0};
  const RunResult res = cluster.run([&](Comm& comm) {
    comm.advance(0.001 * comm.rank());
    comm.barrier();
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), p);
  EXPECT_EQ(static_cast<int>(res.rank_times.size()), p);
}

TEST(Scheduler, RankClocksAdvanceIndependently) {
  Cluster cluster(3, exact_model());
  const RunResult res = cluster.run([&](Comm& comm) {
    for (int i = 0; i <= comm.rank(); ++i) comm.advance(1.5);
  });
  EXPECT_NEAR(res.rank_times[0], 1.5, 1e-12);
  EXPECT_NEAR(res.rank_times[1], 3.0, 1e-12);
  EXPECT_NEAR(res.rank_times[2], 4.5, 1e-12);
  EXPECT_NEAR(res.makespan, 4.5, 1e-12);
}

TEST(Scheduler, MessagesPostedCounter) {
  Cluster cluster(2, exact_model());
  cluster.run([](Comm& comm) {
    const std::uint64_t before = comm.messages_posted();
    if (comm.rank() == 0) {
      int v = 1;
      comm.send(&v, sizeof(v), 1, 0);
    } else {
      int v = 0;
      comm.recv(&v, sizeof(v), 0, 0);
    }
    EXPECT_EQ(comm.messages_posted(), before + 1);
  });
}

}  // namespace
}  // namespace offt::sim
