// The paper's central mechanism: a non-blocking all-to-all only makes
// progress while its owner polls (manual progression, §3.3).  These tests
// pin down that an un-polled ialltoall stalls after its first round and
// that periodic test() calls let communication complete behind compute.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.hpp"

namespace offt::sim {
namespace {

NetworkModel exact_model() {
  NetworkModel m;
  m.inter = {0.5, 1000.0};
  m.intra = m.inter;
  m.injection_overhead = 0.0;
  m.test_overhead = 0.0;
  m.congestion = 0.0;
  m.compute_scale = 0.0;
  return m;
}

// One simulated 3-rank all-to-all with `compute` virtual seconds of work
// between post and wait, polled `polls` times spread across the work.
double run_overlap(int polls, double compute) {
  const int p = 3;
  const std::size_t block = 1000;  // 1 s of wire time per block
  Cluster cluster(p, exact_model());
  std::vector<char> send(block * p), recv(block * p);
  const RunResult res = cluster.run([&](Comm& comm) {
    Request req = comm.ialltoall(send.data(), recv.data(), block);
    const int chunks = polls + 1;
    for (int c = 0; c < chunks; ++c) {
      comm.advance(compute / chunks);
      if (c + 1 < chunks) comm.test(req);
    }
    comm.wait(req);
  });
  return res.makespan;
}

TEST(ManualProgression, UnpolledAlltoallStallsAfterFirstRound) {
  // p = 3: two rounds.  Round 1 completes at 1.5 (alpha 0.5 + wire 1.0),
  // but with no polls round 2 is only posted from wait() at t = 10, so the
  // total is 10 + 1.5 = 11.5.
  EXPECT_NEAR(run_overlap(/*polls=*/0, /*compute=*/10.0), 11.5, 1e-9);
}

TEST(ManualProgression, PolledAlltoallOverlapsWithCompute) {
  // With 9 polls (every 1 s of the 10 s of compute), the poll at t=2
  // observes round 1 complete (1.5) and posts round 2, which completes at
  // 3.5 < 10 — communication fully hidden behind compute.
  EXPECT_NEAR(run_overlap(/*polls=*/9, /*compute=*/10.0), 10.0, 1e-9);
}

TEST(ManualProgression, FewPollsPartiallyHide) {
  // One poll at t=5 posts round 2 then; it completes at 6.5 < 10, so the
  // total is still 10 — but with compute = 3 s the single poll at 1.5
  // posts round 2 at max(1.5, round1 completion 1.5) -> completes 3.0.
  EXPECT_NEAR(run_overlap(/*polls=*/1, /*compute=*/10.0), 10.0, 1e-9);
  EXPECT_NEAR(run_overlap(/*polls=*/1, /*compute=*/3.0), 3.0, 1e-9);
  // With no polls and short compute the wait dominates: 3 + 1.5.
  EXPECT_NEAR(run_overlap(/*polls=*/0, /*compute=*/3.0), 4.5, 1e-9);
}

TEST(ManualProgression, TestOverheadAccumulates) {
  NetworkModel m = exact_model();
  m.test_overhead = 0.01;
  Cluster cluster(2, m);
  const RunResult res = cluster.run([&](Comm& comm) {
    int v = 0;
    Request req;
    if (comm.rank() == 0) {
      req = comm.irecv(&v, sizeof(v), 1, 0);
    } else {
      req = comm.isend(&v, sizeof(v), 0, 0);
    }
    for (int i = 0; i < 100; ++i) comm.test(req);
    comm.wait(req);
    EXPECT_EQ(comm.test_calls(), 100u);
  });
  // Both halves post at t=0, so the message completes at 0.504 on its own;
  // the clocks are driven purely by 100 tests * 0.01 = 1 s of poll
  // overhead.
  EXPECT_NEAR(res.makespan, 1.0, 1e-9);
}

TEST(ManualProgression, WaitIsEagerLikeBlockingMpi) {
  // A blocking alltoall (ialltoall + immediate wait) chains rounds at their
  // exact completion times: p = 4 -> 3 rounds * 1.5 s = 4.5 s.
  const int p = 4;
  const std::size_t block = 1000;
  Cluster cluster(p, exact_model());
  std::vector<char> send(block * p), recv(block * p);
  const RunResult res = cluster.run([&](Comm& comm) {
    comm.alltoall(send.data(), recv.data(), block);
  });
  EXPECT_NEAR(res.makespan, 4.5, 1e-9);
}

TEST(ManualProgression, LaggardPeerStallsEveryone) {
  // Rank 2 enters the all-to-all 20 s late; peers cannot finish their
  // rounds with it any earlier.
  const int p = 3;
  const std::size_t block = 1000;
  Cluster cluster(p, exact_model());
  std::vector<char> send(block * p), recv(block * p);
  const RunResult res = cluster.run([&](Comm& comm) {
    if (comm.rank() == 2) comm.advance(20.0);
    comm.alltoall(send.data(), recv.data(), block);
  });
  EXPECT_GE(res.makespan, 20.0 + 1.5);
}

TEST(ManualProgression, DataIntactUnderSparsePolling) {
  // Correctness must not depend on polling frequency.
  const int p = 4;
  Cluster cluster(p, exact_model());
  std::vector<std::vector<int>> results(p);
  cluster.run([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<int> send(p), recv(p, -1);
    for (int d = 0; d < p; ++d) send[d] = 10 * r + d;
    Request req = comm.ialltoall(send.data(), recv.data(), sizeof(int));
    comm.advance(1.0);
    comm.test(req);
    comm.advance(50.0);
    comm.wait(req);
    results[r] = recv;
  });
  for (int r = 0; r < p; ++r)
    for (int s = 0; s < p; ++s) EXPECT_EQ(results[r][s], 10 * s + r);
}

}  // namespace
}  // namespace offt::sim
