#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/cluster.hpp"
#include "util/rng.hpp"

namespace offt::sim {
namespace {

NetworkModel fast_model() {
  NetworkModel m;
  m.inter = {1e-6, 1e9};
  m.intra = m.inter;
  m.injection_overhead = 1e-7;
  m.test_overhead = 0.0;
  m.congestion = 0.0;
  m.compute_scale = 0.0;
  return m;
}

class AlltoallRanks : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallRanks, BlockingAlltoallPermutesBlocks) {
  const int p = GetParam();
  Cluster cluster(p, fast_model());
  const std::size_t block = 16;  // ints per block
  std::vector<std::vector<int>> results(p);

  cluster.run([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<int> send(block * p), recv(block * p, -1);
    for (int d = 0; d < p; ++d)
      for (std::size_t i = 0; i < block; ++i)
        send[d * block + i] = r * 1000000 + d * 1000 + static_cast<int>(i);
    comm.alltoall(send.data(), recv.data(), block * sizeof(int));
    results[r] = recv;
  });

  for (int r = 0; r < p; ++r) {
    for (int s = 0; s < p; ++s)
      for (std::size_t i = 0; i < block; ++i)
        EXPECT_EQ(results[r][s * block + i],
                  s * 1000000 + r * 1000 + static_cast<int>(i))
            << "p=" << p << " r=" << r << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, AlltoallRanks,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Alltoallv, RaggedBlockSizes) {
  const int p = 4;
  Cluster cluster(p, fast_model());
  std::vector<std::vector<std::uint8_t>> results(p);

  cluster.run([&](Comm& comm) {
    const int r = comm.rank();
    // Rank r sends (r + d + 1) bytes to rank d, each byte = 16*r + d.
    std::vector<std::size_t> sbytes(p), sdispl(p), rbytes(p), rdispl(p);
    std::size_t stotal = 0, rtotal = 0;
    for (int d = 0; d < p; ++d) {
      sbytes[d] = static_cast<std::size_t>(r + d + 1);
      sdispl[d] = stotal;
      stotal += sbytes[d];
      rbytes[d] = static_cast<std::size_t>(d + r + 1);
      rdispl[d] = rtotal;
      rtotal += rbytes[d];
    }
    std::vector<std::uint8_t> send(stotal), recv(rtotal, 0xee);
    for (int d = 0; d < p; ++d)
      for (std::size_t i = 0; i < sbytes[d]; ++i)
        send[sdispl[d] + i] = static_cast<std::uint8_t>(16 * r + d);

    Request req = comm.ialltoallv(send.data(), sbytes.data(), sdispl.data(),
                                  recv.data(), rbytes.data(), rdispl.data());
    comm.wait(req);
    results[r] = recv;
  });

  for (int r = 0; r < p; ++r) {
    std::size_t off = 0;
    for (int s = 0; s < p; ++s) {
      const std::size_t n = static_cast<std::size_t>(s + r + 1);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(results[r][off + i], static_cast<std::uint8_t>(16 * s + r));
      off += n;
    }
  }
}

TEST(Alltoall, ConcurrentWindowsDeliverIndependently) {
  // W = 3 simultaneous non-blocking all-to-alls, completed out of order.
  const int p = 4, windows = 3;
  Cluster cluster(p, fast_model());
  std::vector<std::vector<int>> results(p);

  cluster.run([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<std::vector<int>> send(windows), recv(windows);
    std::vector<Request> reqs;
    for (int w = 0; w < windows; ++w) {
      send[w].resize(p);
      recv[w].assign(p, -1);
      for (int d = 0; d < p; ++d) send[w][d] = 100 * w + 10 * r + d;
      reqs.push_back(
          comm.ialltoall(send[w].data(), recv[w].data(), sizeof(int)));
    }
    // Complete in reverse order.
    for (int w = windows - 1; w >= 0; --w) comm.wait(reqs[w]);
    std::vector<int> flat;
    for (int w = 0; w < windows; ++w)
      flat.insert(flat.end(), recv[w].begin(), recv[w].end());
    results[r] = flat;
  });

  for (int r = 0; r < p; ++r)
    for (int w = 0; w < windows; ++w)
      for (int s = 0; s < p; ++s)
        EXPECT_EQ(results[r][w * p + s], 100 * w + 10 * s + r);
}

TEST(Alltoall, SingleRankIsImmediateSelfCopy) {
  Cluster cluster(1, fast_model());
  const RunResult res = cluster.run([&](Comm& comm) {
    const int v = 5;
    int out = 0;
    Request req = comm.ialltoall(&v, &out, sizeof(int));
    EXPECT_TRUE(req.done());
    comm.wait(req);
    EXPECT_EQ(out, 5);
  });
  EXPECT_LT(res.makespan, 1e-6);
}

TEST(Barrier, SynchronizesVirtualClocks) {
  const int p = 5;
  Cluster cluster(p, fast_model());
  const RunResult res = cluster.run([&](Comm& comm) {
    comm.advance(static_cast<double>(comm.rank()));  // rank r at t=r
    comm.barrier();
    // Nobody can leave the barrier before the slowest entrant.
    EXPECT_GE(comm.now(), 4.0);
  });
  for (double t : res.rank_times) EXPECT_GE(t, 4.0);
}

TEST(Bcast, DeliversFromEveryRoot) {
  const int p = 5;
  Cluster cluster(p, fast_model());
  for (int root = 0; root < p; ++root) {
    std::vector<int> got(p, -1);
    cluster.run([&](Comm& comm) {
      int v = comm.rank() == root ? 1234 + root : -1;
      comm.bcast(&v, sizeof(int), root);
      got[comm.rank()] = v;
    });
    for (int r = 0; r < p; ++r) EXPECT_EQ(got[r], 1234 + root) << root;
  }
}

TEST(Allreduce, SumAndMax) {
  const int p = 7;
  Cluster cluster(p, fast_model());
  cluster.run([&](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(mine), 28.0);  // 1+...+7
    EXPECT_DOUBLE_EQ(comm.allreduce_max(mine), 7.0);
  });
}

TEST(Allreduce, SingleRankPassthrough) {
  Cluster cluster(1, fast_model());
  cluster.run([&](Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(3.5), 3.5);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(-2.0), -2.0);
  });
}

TEST(Collectives, AlltoallTimeGrowsWithClusterSizeAtFixedPerPairBytes) {
  // With per-pair block size fixed, more ranks -> more rounds -> more time.
  const std::size_t block = 1 << 12;
  auto measure = [&](int p) {
    Cluster cluster(p, fast_model());
    std::vector<char> send(block * p), recv(block * p);
    const RunResult res = cluster.run([&](Comm& comm) {
      comm.alltoall(send.data(), recv.data(), block);
    });
    return res.makespan;
  };
  const double t2 = measure(2), t4 = measure(4), t8 = measure(8);
  EXPECT_LT(t2, t4);
  EXPECT_LT(t4, t8);
}

}  // namespace
}  // namespace offt::sim
