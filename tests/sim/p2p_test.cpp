// Point-to-point semantics and hand-computed virtual timing.  All tests
// use compute_scale = 0 so that only explicit advance() calls and modeled
// overheads move the clocks, making every expectation exact.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.hpp"

namespace offt::sim {
namespace {

NetworkModel exact_model() {
  NetworkModel m;
  m.inter = {1.0, 100.0};  // alpha = 1 s, beta = 100 bytes/s
  m.intra = m.inter;
  m.ranks_per_node = 1;
  m.injection_overhead = 0.1;
  m.test_overhead = 0.0;
  m.congestion = 0.0;
  m.compute_scale = 0.0;
  return m;
}

TEST(P2p, PayloadIsDelivered) {
  Cluster cluster(2, exact_model());
  int received = 0;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      const int payload = 42;
      comm.send(&payload, sizeof(int), 1, 7);
    } else {
      comm.recv(&received, sizeof(int), 0, 7);
    }
  });
  EXPECT_EQ(received, 42);
}

TEST(P2p, HandComputedCompletionTime) {
  // Sender posts at t=0.1 (injection).  Receiver advances 5 s, posts at
  // 5.1.  start = max(0.1, 5.1, port=0) = 5.1, wire = 200/100 = 2,
  // completion = 5.1 + 1 + 2 = 8.1.  Both waiters end at 8.1.
  Cluster cluster(2, exact_model());
  std::vector<char> payload(200, 'x'), sink(200);
  const RunResult res = cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      Request r = comm.isend(payload.data(), payload.size(), 1, 0);
      comm.wait(r);
    } else {
      comm.advance(5.0);
      Request r = comm.irecv(sink.data(), sink.size(), 0, 0);
      comm.wait(r);
    }
  });
  EXPECT_NEAR(res.rank_times[0], 8.1, 1e-12);
  EXPECT_NEAR(res.rank_times[1], 8.1, 1e-12);
  EXPECT_NEAR(res.makespan, 8.1, 1e-12);
}

TEST(P2p, SenderPortSerializesBackToBackMessages) {
  // Receiver delays so both sends are posted first (at 0.1 and 0.2).
  // Recvs post at 10.1 and 10.2.  Msg1: start 10.1, port busy until 12.1,
  // completion 13.1.  Msg2: start = max(0.2, 10.2, 12.1) = 12.1,
  // completion 15.1.
  Cluster cluster(2, exact_model());
  std::vector<char> a(200), b(200), ra(200), rb(200);
  const RunResult res = cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      Request r1 = comm.isend(a.data(), a.size(), 1, 1);
      Request r2 = comm.isend(b.data(), b.size(), 1, 2);
      comm.wait(r1);
      comm.wait(r2);
    } else {
      comm.advance(10.0);
      Request r1 = comm.irecv(ra.data(), ra.size(), 0, 1);
      Request r2 = comm.irecv(rb.data(), rb.size(), 0, 2);
      comm.wait(r1);
      comm.wait(r2);
    }
  });
  EXPECT_NEAR(res.rank_times[1], 15.1, 1e-12);
  EXPECT_NEAR(res.rank_times[0], 15.1, 1e-12);
}

TEST(P2p, FifoMatchingPerTriple) {
  // Two sends with identical (src, dst, tag) must match the two recvs in
  // posting order.
  Cluster cluster(2, exact_model());
  int first = 0, second = 0;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      const int one = 1, two = 2;
      Request r1 = comm.isend(&one, sizeof(int), 1, 5);
      Request r2 = comm.isend(&two, sizeof(int), 1, 5);
      comm.wait(r1);
      comm.wait(r2);
    } else {
      Request r1 = comm.irecv(&first, sizeof(int), 0, 5);
      Request r2 = comm.irecv(&second, sizeof(int), 0, 5);
      comm.wait(r1);
      comm.wait(r2);
    }
  });
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST(P2p, TagsSeparateStreams) {
  Cluster cluster(2, exact_model());
  int got_a = 0, got_b = 0;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 10, b = 20;
      // Post in one order; receiver asks in the other.
      Request r1 = comm.isend(&a, sizeof(int), 1, 100);
      Request r2 = comm.isend(&b, sizeof(int), 1, 200);
      comm.wait(r1);
      comm.wait(r2);
    } else {
      Request rb = comm.irecv(&got_b, sizeof(int), 0, 200);
      Request ra = comm.irecv(&got_a, sizeof(int), 0, 100);
      comm.wait(rb);
      comm.wait(ra);
    }
  });
  EXPECT_EQ(got_a, 10);
  EXPECT_EQ(got_b, 20);
}

TEST(P2p, ZeroByteMessageCarriesOnlyLatency) {
  // start = max(0.1, 0.1) = 0.1, wire = 0, completion = 1.1.
  Cluster cluster(2, exact_model());
  const RunResult res = cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(nullptr, 0, 1, 0);
    } else {
      comm.recv(nullptr, 0, 0, 0);
    }
  });
  EXPECT_NEAR(res.makespan, 1.1, 1e-12);
}

TEST(P2p, WaitallCompletesEverything) {
  Cluster cluster(3, exact_model());
  std::vector<int> got(2, -1);
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(comm.irecv(&got[0], sizeof(int), 1, 0));
      reqs.push_back(comm.irecv(&got[1], sizeof(int), 2, 0));
      comm.waitall(reqs);
      EXPECT_TRUE(reqs[0].done());
      EXPECT_TRUE(reqs[1].done());
    } else {
      const int v = comm.rank() * 11;
      comm.send(&v, sizeof(int), 0, 0);
    }
  });
  EXPECT_EQ(got[0], 11);
  EXPECT_EQ(got[1], 22);
}

TEST(P2p, TestDoesNotBlockAndChargesOverhead) {
  NetworkModel m = exact_model();
  m.test_overhead = 0.25;
  Cluster cluster(2, m);
  const RunResult res = cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      int v = 0;
      Request r = comm.irecv(&v, sizeof(int), 1, 0);
      // Peer won't post for 10 virtual seconds; test must return false
      // immediately (charging 0.25 each) instead of blocking.
      EXPECT_FALSE(comm.test(r));
      EXPECT_FALSE(comm.test(r));
      EXPECT_EQ(comm.test_calls(), 2u);
      comm.wait(r);
      EXPECT_EQ(v, 99);
    } else {
      comm.advance(10.0);
      const int v = 99;
      comm.send(&v, sizeof(int), 0, 0);
    }
  });
  // Rank 0: irecv at 0.1, two tests -> 0.6, then waits to completion
  // (posts: send at 10.1; start 10.1; completion 11.1 + wire 4/100).
  EXPECT_NEAR(res.rank_times[0], 10.1 + 1.0 + 0.04, 1e-9);
}

TEST(P2p, SelfMessageWorks) {
  Cluster cluster(2, exact_model());
  int got = 0;
  cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 7;
      Request s = comm.isend(&v, sizeof(int), 0, 3);
      Request r = comm.irecv(&got, sizeof(int), 0, 3);
      comm.wait(s);
      comm.wait(r);
    }
  });
  EXPECT_EQ(got, 7);
}

TEST(P2p, InvalidRankOrTagThrows) {
  Cluster cluster(2, exact_model());
  EXPECT_THROW(cluster.run([&](Comm& comm) {
                 if (comm.rank() == 0) comm.send(nullptr, 0, 5, 0);
               }),
               std::logic_error);
  EXPECT_THROW(cluster.run([&](Comm& comm) {
                 if (comm.rank() == 0) comm.send(nullptr, 0, 1, -3);
               }),
               std::logic_error);
}

}  // namespace
}  // namespace offt::sim
