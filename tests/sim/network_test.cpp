#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace offt::sim {
namespace {

TEST(NetworkModel, SameNodeRespectsRanksPerNode) {
  NetworkModel m;
  m.ranks_per_node = 4;
  EXPECT_TRUE(m.same_node(0, 3));
  EXPECT_FALSE(m.same_node(3, 4));
  EXPECT_TRUE(m.same_node(5, 6));
  EXPECT_FALSE(m.same_node(0, 8));
}

TEST(NetworkModel, OneRankPerNodeIsNeverSameNode) {
  NetworkModel m;
  m.ranks_per_node = 1;
  EXPECT_FALSE(m.same_node(0, 0));
  EXPECT_FALSE(m.same_node(0, 1));
}

TEST(NetworkModel, LinkSelection) {
  NetworkModel m;
  m.ranks_per_node = 2;
  m.inter = {10e-6, 1e8};
  m.intra = {1e-6, 1e9};
  EXPECT_DOUBLE_EQ(m.link(0, 1).alpha, 1e-6);
  EXPECT_DOUBLE_EQ(m.link(0, 2).alpha, 10e-6);
}

TEST(NetworkModel, GammaGrowsWithClusterSize) {
  NetworkModel m;
  m.congestion = 0.1;
  EXPECT_DOUBLE_EQ(m.gamma(1), 1.0);
  EXPECT_DOUBLE_EQ(m.gamma(2), 1.1);
  EXPECT_DOUBLE_EQ(m.gamma(16), 1.4);
  EXPECT_GT(m.gamma(256), m.gamma(16));
}

TEST(NetworkModel, WireTimeScalesWithBytes) {
  NetworkModel m;
  m.inter = {0.0, 100.0};  // 100 bytes/s
  m.congestion = 0.0;
  EXPECT_DOUBLE_EQ(m.wire_time(200, 0, 1, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.wire_time(0, 0, 1, 2), 0.0);
}

TEST(Platform, PresetsHaveExpectedShape) {
  const Platform umd = Platform::umd_cluster();
  const Platform hopper = Platform::hopper();
  // UMD: one rank per node over a slow fabric; Hopper: 8 ranks/node over a
  // fast torus — so Hopper's inter-node link is strictly faster and its
  // intra-node link faster still.
  EXPECT_EQ(umd.net.ranks_per_node, 1);
  EXPECT_EQ(hopper.net.ranks_per_node, 8);
  EXPECT_LT(hopper.net.inter.alpha, umd.net.inter.alpha);
  EXPECT_GT(hopper.net.inter.beta, umd.net.inter.beta);
  EXPECT_GT(hopper.net.intra.beta, hopper.net.inter.beta);
}

TEST(Platform, IdealNetworkIsFree) {
  const Platform ideal = Platform::ideal();
  EXPECT_DOUBLE_EQ(ideal.net.inter.alpha, 0.0);
  EXPECT_DOUBLE_EQ(ideal.net.injection_overhead, 0.0);
  EXPECT_DOUBLE_EQ(ideal.net.test_overhead, 0.0);
}

TEST(Platform, ByName) {
  EXPECT_EQ(Platform::by_name("umd").name, "umd-cluster");
  EXPECT_EQ(Platform::by_name("umd-cluster").name, "umd-cluster");
  EXPECT_EQ(Platform::by_name("hopper").name, "hopper");
  EXPECT_EQ(Platform::by_name("ideal").name, "ideal");
  EXPECT_THROW(Platform::by_name("bogus"), std::logic_error);
}

}  // namespace
}  // namespace offt::sim
