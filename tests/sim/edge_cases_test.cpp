// Edge cases and stress scenarios for the cluster simulator beyond the
// core semantics suites: ragged/empty alltoallv blocks, intra-node link
// selection, congestion scaling, cluster reuse across different programs,
// and randomized point-to-point traffic checked for payload integrity.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "sim/cluster.hpp"
#include "util/rng.hpp"

namespace offt::sim {
namespace {

NetworkModel exact_model() {
  NetworkModel m;
  m.inter = {1.0, 100.0};
  m.intra = {0.25, 1000.0};
  m.ranks_per_node = 1;
  m.injection_overhead = 0.0;
  m.test_overhead = 0.0;
  m.congestion = 0.0;
  m.compute_scale = 0.0;
  return m;
}

TEST(AlltoallvEdge, ZeroSizeBlocksAreLegal) {
  // Rank r sends data only to rank (r+1) mod p; everyone else gets zero
  // bytes.  The collective must still complete and deliver correctly.
  const int p = 4;
  Cluster cluster(p, exact_model());
  std::vector<int> got(p, -1);
  cluster.run([&](Comm& comm) {
    const int r = comm.rank();
    const int payload = 100 + r;
    std::vector<std::size_t> sbytes(p, 0), sdispl(p, 0), rbytes(p, 0),
        rdispl(p, 0);
    sbytes[(r + 1) % p] = sizeof(int);
    rbytes[(r + p - 1) % p] = sizeof(int);
    int incoming = -1;
    Request req = comm.ialltoallv(&payload, sbytes.data(), sdispl.data(),
                                  &incoming, rbytes.data(), rdispl.data());
    comm.wait(req);
    got[r] = incoming;
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(got[r], 100 + (r + p - 1) % p);
}

TEST(AlltoallvEdge, EntirelyEmptyExchangeCompletes) {
  const int p = 3;
  Cluster cluster(p, exact_model());
  const RunResult res = cluster.run([&](Comm& comm) {
    std::vector<std::size_t> zero(p, 0);
    Request req = comm.ialltoallv(nullptr, zero.data(), zero.data(), nullptr,
                                  zero.data(), zero.data());
    comm.wait(req);
  });
  // Only latency terms: two rounds of zero-byte messages.
  EXPECT_LT(res.makespan, 10.0);
}

TEST(IntraNode, SameNodeMessagesUseTheFasterLink) {
  NetworkModel m = exact_model();
  m.ranks_per_node = 2;  // ranks {0,1} on node 0, {2,3} on node 1
  Cluster cluster(4, m);

  auto time_pair = [&](int a, int b) {
    std::vector<char> buf(1000);
    const RunResult res = cluster.run([&](Comm& comm) {
      if (comm.rank() == a) comm.send(buf.data(), buf.size(), b, 0);
      if (comm.rank() == b) comm.recv(buf.data(), buf.size(), a, 0);
    });
    return res.makespan;
  };
  // Intra: 0.25 + 1000/1000 = 1.25.  Inter: 1 + 1000/100 = 11.
  EXPECT_NEAR(time_pair(0, 1), 1.25, 1e-9);
  EXPECT_NEAR(time_pair(2, 3), 1.25, 1e-9);
  EXPECT_NEAR(time_pair(1, 2), 11.0, 1e-9);
}

TEST(Congestion, InflatesWireTimeWithClusterSize) {
  NetworkModel m = exact_model();
  m.congestion = 0.5;
  // gamma(4) = 1 + 0.5*2 = 2 -> wire doubles.
  Cluster cluster(4, m);
  std::vector<char> buf(1000);
  const RunResult res = cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) comm.send(buf.data(), buf.size(), 1, 0);
    if (comm.rank() == 1) comm.recv(buf.data(), buf.size(), 0, 0);
  });
  EXPECT_NEAR(res.makespan, 1.0 + 2.0 * 10.0, 1e-9);
}

TEST(ClusterReuse, DifferentProgramsBackToBack) {
  Cluster cluster(3, exact_model());
  const RunResult a = cluster.run([](Comm& comm) { comm.advance(1.0); });
  EXPECT_NEAR(a.makespan, 1.0, 1e-12);
  // A different program afterwards, twice: clocks reset between runs, so
  // both executions produce identical virtual times.
  auto program = [](Comm& comm) {
    comm.advance(0.5);
    comm.barrier();
  };
  const RunResult b1 = cluster.run(program);
  const RunResult b2 = cluster.run(program);
  EXPECT_GE(b1.makespan, 0.5);
  EXPECT_DOUBLE_EQ(b1.makespan, b2.makespan);
}

TEST(Stress, RandomizedP2pTrafficDeliversEveryPayload) {
  const int p = 5;
  const int messages = 200;
  Cluster cluster(p, exact_model());

  // Pre-generate a global traffic pattern: (src, dst, value).
  util::Rng rng(321);
  struct Msg {
    int src, dst, tag;
    int value;
  };
  std::vector<Msg> traffic;
  std::map<std::pair<int, int>, int> tag_counter;
  for (int i = 0; i < messages; ++i) {
    const int src = static_cast<int>(rng.next_below(p));
    int dst = static_cast<int>(rng.next_below(p));
    if (dst == src) dst = (dst + 1) % p;
    const int tag = tag_counter[{src, dst}]++;  // unique per pair
    traffic.push_back({src, dst, tag, 10000 + i});
  }

  std::vector<std::vector<int>> received(p);
  cluster.run([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<Request> reqs;
    std::vector<std::unique_ptr<int>> boxes;
    std::vector<int> expected;
    for (const Msg& m : traffic) {
      if (m.src == r) {
        boxes.push_back(std::make_unique<int>(m.value));
        reqs.push_back(
            comm.isend(boxes.back().get(), sizeof(int), m.dst, m.tag));
      }
      if (m.dst == r) {
        boxes.push_back(std::make_unique<int>(-1));
        reqs.push_back(
            comm.irecv(boxes.back().get(), sizeof(int), m.src, m.tag));
        expected.push_back(m.value);
      }
    }
    comm.waitall(reqs);
    std::vector<int> got;
    std::size_t box = 0;
    for (const Msg& m : traffic) {
      if (m.src == r) ++box;
      if (m.dst == r) got.push_back(*boxes[box++]);
    }
    EXPECT_EQ(got, expected) << "rank " << r;
    received[r] = got;
  });

  std::size_t total = 0;
  for (const auto& v : received) total += v.size();
  EXPECT_EQ(total, traffic.size());
}

TEST(Stress, ManyConcurrentAlltoallsAcrossManyRanks) {
  const int p = 12, windows = 5;
  NetworkModel m = exact_model();
  m.inter = {1e-3, 1e6};
  m.intra = m.inter;
  Cluster cluster(p, m);
  std::vector<int> checksum(p, 0);
  cluster.run([&](Comm& comm) {
    const int r = comm.rank();
    std::vector<std::vector<int>> send(windows), recv(windows);
    std::vector<Request> reqs;
    for (int w = 0; w < windows; ++w) {
      send[w].resize(p);
      recv[w].assign(p, 0);
      for (int d = 0; d < p; ++d) send[w][d] = (w + 1) * (r + 1) * (d + 1);
      reqs.push_back(
          comm.ialltoall(send[w].data(), recv[w].data(), sizeof(int)));
    }
    // Poll in a scattered order, then wait.
    for (int i = 0; i < 50; ++i) {
      comm.advance(1e-4);
      comm.test(reqs[static_cast<std::size_t>(i) % windows]);
    }
    comm.waitall(reqs);
    int sum = 0;
    for (int w = 0; w < windows; ++w)
      for (int s = 0; s < p; ++s) {
        EXPECT_EQ(recv[w][s], (w + 1) * (s + 1) * (r + 1));
        sum += recv[w][s];
      }
    checksum[r] = sum;
  });
  for (int r = 0; r < p; ++r) EXPECT_GT(checksum[r], 0);
}

TEST(PortModel, IntraAndInterShareTheSenderPort) {
  // Two back-to-back sends from rank 0: one intra-node, one inter-node.
  // The port booking is serialized regardless of which link carries the
  // message.
  NetworkModel m = exact_model();
  m.ranks_per_node = 2;
  Cluster cluster(4, m);
  std::vector<char> a(1000), b(1000), ra(1000), rb(1000);
  const RunResult res = cluster.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      Request r1 = comm.isend(a.data(), a.size(), 1, 1);  // intra
      Request r2 = comm.isend(b.data(), b.size(), 2, 2);  // inter
      comm.wait(r1);
      comm.wait(r2);
    } else if (comm.rank() == 1) {
      comm.recv(ra.data(), ra.size(), 0, 1);
    } else if (comm.rank() == 2) {
      comm.recv(rb.data(), rb.size(), 0, 2);
    }
  });
  // Msg1 (intra): start 0, wire 1, completion 1.25; port free at 1.
  // Msg2 (inter): start max(0, port=1) = 1, wire 10, completion 12.
  EXPECT_NEAR(res.makespan, 12.0, 1e-9);
}

}  // namespace
}  // namespace offt::sim
