#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace offt::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"p", "N", "time"});
  t.add_row({"16", "256", "0.369"});
  t.add_row({"32", "640", "3.129"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Cells are right-aligned to the widest entry in the column.
  EXPECT_NE(out.find(" p "), std::string::npos);
  EXPECT_NE(out.find("| 16 "), std::string::npos);
  EXPECT_NE(out.find("0.369"), std::string::npos);
  EXPECT_NE(out.find("3.129"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| 1 "), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::num(2.0, 1), "2.0");
  EXPECT_EQ(Table::integer(42), "42");
}

}  // namespace
}  // namespace offt::util
