#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace offt::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(differ);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(11);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) seen[r.uniform_int(0, 3)] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Rng, MeanRoughlyCentered) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

}  // namespace
}  // namespace offt::util
