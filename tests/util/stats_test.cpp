#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace offt::util {
namespace {

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
}

TEST(Stats, SingleSample) {
  const Summary s = summarize({3.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownDistribution) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);
}

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
}

TEST(Stats, SummaryIgnoresInputOrder) {
  const Summary a = summarize({4.0, 1.0, 3.0, 2.0});
  const Summary b = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0.0, 1.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 0.25);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 0.75);
}

TEST(Stats, CdfAt) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(cdf_at(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(v, 10.0), 1.0);
}

}  // namespace
}  // namespace offt::util
