#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace offt::util {
namespace {

Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const Cli cli = make_cli({"--ranks=16", "--platform=hopper"});
  EXPECT_EQ(cli.get_int("ranks", 0), 16);
  EXPECT_EQ(cli.get_string("platform", ""), "hopper");
}

TEST(Cli, SpaceSyntax) {
  const Cli cli = make_cli({"--ranks", "8"});
  EXPECT_EQ(cli.get_int("ranks", 0), 8);
}

TEST(Cli, BooleanFlag) {
  const Cli cli = make_cli({"--quick", "--ranks=4"});
  EXPECT_TRUE(cli.has("quick"));
  EXPECT_FALSE(cli.has("full"));
}

TEST(Cli, Defaults) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_EQ(cli.get_string("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
}

TEST(Cli, IntList) {
  const Cli cli = make_cli({"--sizes=64,96,128"});
  const auto v = cli.get_int_list("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 64);
  EXPECT_EQ(v[2], 128);
}

TEST(Cli, IntListDefault) {
  const Cli cli = make_cli({});
  const auto v = cli.get_int_list("sizes", {32});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 32);
}

TEST(Cli, Positional) {
  const Cli cli = make_cli({"input.dat", "--ranks=2", "output.dat"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.dat");
  EXPECT_EQ(cli.positional()[1], "output.dat");
}

TEST(Cli, DoubleValue) {
  const Cli cli = make_cli({"--alpha=1.5e-6"});
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0), 1.5e-6);
}

}  // namespace
}  // namespace offt::util
