#include "tune/search_space.hpp"

#include <gtest/gtest.h>

namespace offt::tune {
namespace {

TEST(LogScaleValues, MatchesPaperExample) {
  // §4.4: "when Nz = 24, T can be 1, 2, 4, 8, 16, or 24".
  const auto v = log_scale_values(1, 24);
  EXPECT_EQ(v, (std::vector<long long>{1, 2, 4, 8, 16, 24}));
}

TEST(LogScaleValues, BoundsAlwaysIncluded) {
  EXPECT_EQ(log_scale_values(3, 20), (std::vector<long long>{3, 4, 8, 16, 20}));
  EXPECT_EQ(log_scale_values(1, 1), (std::vector<long long>{1}));
  EXPECT_EQ(log_scale_values(4, 4), (std::vector<long long>{4}));
  EXPECT_EQ(log_scale_values(2, 8), (std::vector<long long>{2, 4, 8}));
}

TEST(LogScaleValues, NoDuplicatesWhenBoundIsPowerOfTwo) {
  const auto v = log_scale_values(1, 16);
  EXPECT_EQ(v, (std::vector<long long>{1, 2, 4, 8, 16}));
}

TEST(SearchSpace, AddSortsAndDedups) {
  SearchSpace s;
  s.add("x", {5, 1, 3, 3, 1});
  EXPECT_EQ(s.param(0).values, (std::vector<long long>{1, 3, 5}));
  EXPECT_EQ(s.dims(), 1u);
}

TEST(SearchSpace, IndexOf) {
  SearchSpace s;
  s.add("a", {1});
  s.add("b", {2});
  EXPECT_EQ(s.index_of("a"), 0u);
  EXPECT_EQ(s.index_of("b"), 1u);
  EXPECT_THROW(s.index_of("c"), std::logic_error);
}

TEST(SearchSpace, TotalConfigs) {
  SearchSpace s;
  s.add("a", {1, 2, 3});
  s.add("b", {1, 2});
  EXPECT_DOUBLE_EQ(s.total_configs(), 6.0);
}

TEST(SearchSpace, SnapRoundsAndClamps) {
  SearchSpace s;
  s.add("a", {10, 20, 40});
  EXPECT_EQ(s.snap({0.4}), (Config{10}));
  EXPECT_EQ(s.snap({0.6}), (Config{20}));
  EXPECT_EQ(s.snap({7.0}), (Config{40}));
  EXPECT_EQ(s.snap({-3.0}), (Config{10}));
}

TEST(SearchSpace, ToPointAndBack) {
  SearchSpace s;
  s.add_log_scale("T", 1, 24);
  s.add("W", {0, 1, 2, 3, 4});
  const Config c{16, 2};
  EXPECT_EQ(s.snap(s.to_point(c)), c);
}

TEST(SearchSpace, NearestIndexPicksClosestCandidate) {
  SearchSpace s;
  s.add("a", {1, 4, 16});
  EXPECT_DOUBLE_EQ(s.nearest_index(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.nearest_index(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(s.nearest_index(0, 100), 2.0);
}

TEST(SearchSpace, RandomConfigStaysInSpace) {
  SearchSpace s;
  s.add("a", {1, 2, 4});
  s.add("b", {10, 20});
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Config c = s.random_config(rng);
    EXPECT_TRUE(c[0] == 1 || c[0] == 2 || c[0] == 4);
    EXPECT_TRUE(c[1] == 10 || c[1] == 20);
  }
}

TEST(SearchSpace, EnumerateVisitsEverything) {
  SearchSpace s;
  s.add("a", {1, 2});
  s.add("b", {10, 20, 30});
  const auto all = s.enumerate();
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(all.front(), (Config{1, 10}));
  EXPECT_EQ(all.back(), (Config{2, 30}));
}

TEST(SearchSpace, EnumerateRejectsHugeSpaces) {
  SearchSpace s;
  for (int i = 0; i < 10; ++i) s.add("p" + std::to_string(i), {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_THROW(s.enumerate(), std::logic_error);
}

}  // namespace
}  // namespace offt::tune
