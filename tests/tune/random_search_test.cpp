#include "tune/random_search.hpp"

#include <gtest/gtest.h>

namespace offt::tune {
namespace {

SearchSpace small_space() {
  SearchSpace s;
  s.add("a", {0, 1, 2, 3, 4, 5, 6, 7});
  s.add("b", {0, 1, 2, 3});
  return s;
}

TEST(RandomSearch, FindsGoodPointWithEnoughSamples) {
  const SearchSpace space = small_space();
  Objective obj = [](const Config& c) {
    return static_cast<double>((c[0] - 5) * (c[0] - 5) + (c[1] - 2) * (c[1] - 2));
  };
  const SearchResult r = random_search(space, obj, nullptr, 200, 42);
  EXPECT_DOUBLE_EQ(r.best_value, 0.0);
  EXPECT_EQ(r.best, (Config{5, 2}));
  EXPECT_EQ(r.trace.size(), 200u);
}

TEST(RandomSearch, DeterministicForSeed) {
  const SearchSpace space = small_space();
  Objective obj = [](const Config& c) {
    return static_cast<double>(c[0] * 4 + c[1]);
  };
  const SearchResult a = random_search(space, obj, nullptr, 50, 7);
  const SearchResult b = random_search(space, obj, nullptr, 50, 7);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(RandomSearch, CachesRepeats) {
  const SearchSpace space = small_space();  // only 32 configs
  int calls = 0;
  Objective obj = [&](const Config&) {
    ++calls;
    return 1.0;
  };
  const SearchResult r = random_search(space, obj, nullptr, 500, 1);
  EXPECT_LE(calls, 32);
  EXPECT_EQ(r.evaluations, calls);
  EXPECT_EQ(r.cache_hits, 500 - calls - r.penalized);
}

TEST(RandomSearch, PenalizesInfeasibleForFree) {
  const SearchSpace space = small_space();
  int calls = 0;
  Objective obj = [&](const Config&) {
    ++calls;
    return 1.0;
  };
  Constraint feasible = [](const Config& c) { return c[0] % 2 == 0; };
  const SearchResult r = random_search(space, obj, feasible, 300, 9);
  EXPECT_GT(r.penalized, 0);
  for (int i = 0; i < 1; ++i) EXPECT_EQ(r.best[0] % 2, 0);
}

TEST(ExhaustiveSearch, FindsGlobalOptimum) {
  const SearchSpace space = small_space();
  Objective obj = [](const Config& c) {
    return static_cast<double>((c[0] - 3) * (c[0] - 3)) +
           0.5 * static_cast<double>((c[1] - 1) * (c[1] - 1));
  };
  const SearchResult r = exhaustive_search(space, obj, nullptr);
  EXPECT_EQ(r.best, (Config{3, 1}));
  EXPECT_EQ(r.evaluations, 32);
}

TEST(ExhaustiveSearch, SkipsInfeasible) {
  const SearchSpace space = small_space();
  Constraint feasible = [](const Config& c) { return c[1] > c[0]; };
  Objective obj = [](const Config& c) {
    return static_cast<double>(c[0] + c[1]);
  };
  const SearchResult r = exhaustive_search(space, obj, feasible);
  EXPECT_EQ(r.best, (Config{0, 1}));
  EXPECT_GT(r.penalized, 0);
  EXPECT_EQ(r.evaluations + r.penalized, 32);
}

}  // namespace
}  // namespace offt::tune
