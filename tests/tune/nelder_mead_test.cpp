#include "tune/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace offt::tune {
namespace {

SearchSpace grid2d() {
  SearchSpace s;
  std::vector<long long> vals;
  for (long long v = 0; v <= 32; ++v) vals.push_back(v);
  s.add("x", vals);
  s.add("y", vals);
  return s;
}

TEST(NelderMead, ConvergesOnConvexQuadratic) {
  const SearchSpace space = grid2d();
  int calls = 0;
  Objective obj = [&](const Config& c) {
    ++calls;
    const double dx = static_cast<double>(c[0]) - 7.0;
    const double dy = static_cast<double>(c[1]) - 21.0;
    return dx * dx + dy * dy;
  };
  NelderMead nm(space, obj);
  const SearchResult r = nm.run();
  EXPECT_LE(std::llabs(r.best[0] - 7), 1);
  EXPECT_LE(std::llabs(r.best[1] - 21), 1);
  EXPECT_LT(r.best_value, 3.0);
  EXPECT_EQ(r.evaluations, calls);
}

TEST(NelderMead, HistoryCacheAvoidsReruns) {
  const SearchSpace space = grid2d();
  int calls = 0;
  Objective obj = [&](const Config& c) {
    ++calls;
    return std::abs(static_cast<double>(c[0]) - 16.0) +
           std::abs(static_cast<double>(c[1]) - 16.0);
  };
  NelderMead nm(space, obj);
  const SearchResult r = nm.run();
  // Snapping to integers makes revisits inevitable near convergence; every
  // one of them must be served from cache, not re-executed.
  EXPECT_EQ(r.evaluations, calls);
  EXPECT_GT(r.cache_hits, 0);
}

TEST(NelderMead, InfeasiblePointsAreNeverExecuted) {
  const SearchSpace space = grid2d();
  int calls = 0;
  Objective obj = [&](const Config& c) {
    ++calls;
    // The objective would blow up on infeasible configs; the constraint
    // must shield it.
    EXPECT_LE(c[1], c[0]);
    const double dx = static_cast<double>(c[0]) - 20.0;
    const double dy = static_cast<double>(c[1]) - 10.0;
    return dx * dx + dy * dy;
  };
  Constraint feasible = [](const Config& c) { return c[1] <= c[0]; };
  NelderMead nm(space, obj, feasible);
  const SearchResult r = nm.run();
  EXPECT_TRUE(feasible(r.best));
  EXPECT_LT(r.best_value, 30.0);  // near (20, 10)
  EXPECT_GE(r.penalized, 0);
  EXPECT_EQ(r.evaluations, calls);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  const SearchSpace space = grid2d();
  NelderMeadOptions opts;
  opts.max_evaluations = 10;
  int calls = 0;
  Objective obj = [&](const Config& c) {
    ++calls;
    return static_cast<double>(c[0] + c[1]);
  };
  NelderMead nm(space, obj, nullptr, opts);
  nm.run();
  EXPECT_LE(calls, 10);
}

TEST(NelderMead, CustomInitialSimplexIsUsed) {
  const SearchSpace space = grid2d();
  std::vector<Config> seen;
  Objective obj = [&](const Config& c) {
    seen.push_back(c);
    const double dx = static_cast<double>(c[0]) - 2.0;
    const double dy = static_cast<double>(c[1]) - 2.0;
    return dx * dx + dy * dy;
  };
  NelderMead nm(space, obj);
  nm.set_initial_simplex({{1, 1}, {3, 1}, {1, 3}});
  const SearchResult r = nm.run();
  // The three simplex vertices are evaluated first.
  ASSERT_GE(seen.size(), 3u);
  EXPECT_EQ(seen[0], (Config{1, 1}));
  EXPECT_EQ(seen[1], (Config{3, 1}));
  EXPECT_EQ(seen[2], (Config{1, 3}));
  EXPECT_LE(r.best_value, 2.0);
}

TEST(NelderMead, InitialSimplexSizeValidated) {
  const SearchSpace space = grid2d();
  NelderMead nm(space, [](const Config&) { return 0.0; });
  EXPECT_THROW(nm.set_initial_simplex({{1, 1}}), std::logic_error);
}

TEST(NelderMead, TraceIsMonotoneNonIncreasing) {
  const SearchSpace space = grid2d();
  Objective obj = [](const Config& c) {
    const double dx = static_cast<double>(c[0]) - 30.0;
    const double dy = static_cast<double>(c[1]) - 3.0;
    return dx * dx + 3.0 * dy * dy + 5.0;
  };
  NelderMead nm(space, obj);
  const SearchResult r = nm.run();
  ASSERT_FALSE(r.trace.empty());
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_LE(r.trace[i], r.trace[i - 1]);
  EXPECT_DOUBLE_EQ(r.trace.back(), r.best_value);
}

TEST(NelderMead, OneDimensionalSpace) {
  SearchSpace s;
  s.add_log_scale("T", 1, 64);
  Objective obj = [](const Config& c) {
    const double v = static_cast<double>(c[0]);
    return std::abs(v - 16.0) + 1.0;
  };
  NelderMead nm(s, obj);
  const SearchResult r = nm.run();
  EXPECT_EQ(r.best[0], 16);
}

TEST(NelderMead, SurvivesAllInfeasibleStart) {
  SearchSpace s;
  s.add("x", {0, 1, 2, 3, 4, 5, 6, 7, 8});
  // Only x >= 7 feasible; default simplex starts around the centre.
  Constraint feasible = [](const Config& c) { return c[0] >= 7; };
  Objective obj = [](const Config& c) { return static_cast<double>(c[0]); };
  NelderMead nm(s, obj, feasible);
  const SearchResult r = nm.run();
  EXPECT_GE(r.best[0], 7);
  EXPECT_LT(r.best_value, kInfeasible);
}

}  // namespace
}  // namespace offt::tune
