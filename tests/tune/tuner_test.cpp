#include "tune/tuner.hpp"

#include <gtest/gtest.h>

namespace offt::tune {
namespace {

SearchSpace space_1d() {
  SearchSpace s;
  std::vector<long long> vals;
  for (long long v = 0; v < 64; ++v) vals.push_back(v);
  s.add("x", vals);
  return s;
}

TEST(Tuner, StrategyNames) {
  EXPECT_STREQ(to_string(Strategy::NelderMeadSearch), "nelder-mead");
  EXPECT_STREQ(to_string(Strategy::RandomSearch), "random");
  EXPECT_STREQ(to_string(Strategy::ExhaustiveSearch), "exhaustive");
  EXPECT_EQ(strategy_by_name("nm"), Strategy::NelderMeadSearch);
  EXPECT_EQ(strategy_by_name("random"), Strategy::RandomSearch);
  EXPECT_EQ(strategy_by_name("exhaustive"), Strategy::ExhaustiveSearch);
  EXPECT_THROW(strategy_by_name("simulated-annealing"), std::logic_error);
}

TEST(Tuner, AllStrategiesMinimize) {
  const SearchSpace space = space_1d();
  Objective obj = [](const Config& c) {
    const double v = static_cast<double>(c[0]);
    return (v - 40.0) * (v - 40.0);
  };
  for (Strategy strat : {Strategy::NelderMeadSearch, Strategy::RandomSearch,
                         Strategy::ExhaustiveSearch}) {
    TuneOptions opts;
    opts.strategy = strat;
    opts.random_samples = 300;
    const TuneOutcome out = tune(space, obj, nullptr, opts);
    EXPECT_LE(out.search.best_value, 4.0) << to_string(strat);
    EXPECT_GE(out.wall_seconds, 0.0);
  }
}

TEST(Tuner, InitialSimplexPassesThrough) {
  const SearchSpace space = space_1d();
  std::vector<Config> seen;
  Objective obj = [&](const Config& c) {
    seen.push_back(c);
    return static_cast<double>(c[0]);
  };
  TuneOptions opts;
  opts.initial_simplex = {{8}, {16}};
  const TuneOutcome out = tune(space, obj, nullptr, opts);
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen[0], (Config{8}));
  EXPECT_EQ(seen[1], (Config{16}));
  EXPECT_EQ(out.search.best[0], 0);  // NM walks down to the boundary
}

TEST(Tuner, NelderMeadBeatsRandomAtEqualBudgetOnSmoothLandscape) {
  // The §5.3.1 story: NM's deterministic descent reaches a good point in
  // fewer evaluations than random sampling typically does.
  const SearchSpace space = space_1d();
  Objective obj = [](const Config& c) {
    const double v = static_cast<double>(c[0]);
    return (v - 23.0) * (v - 23.0) + 1.0;
  };
  TuneOptions nm_opts;
  nm_opts.nm.max_evaluations = 12;
  const TuneOutcome nm = tune(space, obj, nullptr, nm_opts);

  TuneOptions rnd_opts;
  rnd_opts.strategy = Strategy::RandomSearch;
  rnd_opts.random_samples = 12;
  rnd_opts.seed = 5;
  const TuneOutcome rnd = tune(space, obj, nullptr, rnd_opts);

  EXPECT_LE(nm.search.best_value, rnd.search.best_value);
}

}  // namespace
}  // namespace offt::tune
