// High-level tuning driver — the in-process equivalent of the Active
// Harmony server/client loop in the paper's Fig. 6.  The "server" is a
// search strategy proposing configurations; the "client" runs the tuning
// target and reports performance; this driver wires the two together and
// records how long tuning itself took (Table 4).
#pragma once

#include <string>

#include "tune/nelder_mead.hpp"
#include "tune/random_search.hpp"

namespace offt::tune {

enum class Strategy { NelderMeadSearch, RandomSearch, ExhaustiveSearch };

const char* to_string(Strategy s);
Strategy strategy_by_name(const std::string& name);

struct TuneOptions {
  Strategy strategy = Strategy::NelderMeadSearch;
  NelderMeadOptions nm;            // used by NelderMeadSearch
  int random_samples = 200;        // used by RandomSearch
  std::uint64_t seed = 1;          // used by RandomSearch
  // Optional initial simplex for NelderMeadSearch (value coordinates);
  // empty = default centre simplex.
  std::vector<Config> initial_simplex;
};

struct TuneOutcome {
  SearchResult search;
  double wall_seconds = 0.0;  // real time spent in the whole tuning loop
};

TuneOutcome tune(const SearchSpace& space, const Objective& objective,
                 const Constraint& constraint, const TuneOptions& options);

}  // namespace offt::tune
