#include "tune/random_search.hpp"

#include <map>

namespace offt::tune {

SearchResult random_search(const SearchSpace& space, const Objective& objective,
                           const Constraint& constraint, int samples,
                           std::uint64_t seed) {
  SearchResult result;
  util::Rng rng(seed);
  std::map<Config, double> cache;
  for (int s = 0; s < samples; ++s) {
    const Config config = space.random_config(rng);
    double value;
    if (const auto it = cache.find(config); it != cache.end()) {
      ++result.cache_hits;
      value = it->second;
    } else if (constraint && !constraint(config)) {
      ++result.penalized;
      value = kInfeasible;
      cache.emplace(config, value);
    } else {
      value = objective(config);
      ++result.evaluations;
      cache.emplace(config, value);
    }
    if (value < result.best_value) {
      result.best_value = value;
      result.best = config;
    }
    result.trace.push_back(result.best_value);
  }
  return result;
}

SearchResult exhaustive_search(const SearchSpace& space,
                               const Objective& objective,
                               const Constraint& constraint) {
  SearchResult result;
  for (const Config& config : space.enumerate()) {
    if (constraint && !constraint(config)) {
      ++result.penalized;
      continue;
    }
    const double value = objective(config);
    ++result.evaluations;
    if (value < result.best_value) {
      result.best_value = value;
      result.best = config;
    }
    result.trace.push_back(result.best_value);
  }
  return result;
}

}  // namespace offt::tune
