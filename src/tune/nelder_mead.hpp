// Discrete Nelder-Mead simplex search, following the paper's use of
// Active Harmony (§4.3-4.4):
//   * the simplex lives in continuous index coordinates of the reduced
//     space; every evaluation snaps to the nearest candidate configuration
//     (AH's integer-domain handling),
//   * infeasible configurations are reported as +infinity immediately,
//     without executing the tuning target (the penalty technique),
//   * previously tested configurations are served from a history cache
//     (the reuse technique),
//   * the caller supplies the initial simplex (the paper constructs it
//     from a heuristic default point; see core/fft_tuner.hpp).
#pragma once

#include <cstdint>

#include "tune/search_space.hpp"

namespace offt::tune {

struct NelderMeadOptions {
  int max_evaluations = 120;   // objective executions, not counting cache
                               // hits or penalized points
  int max_iterations = 400;    // NM steps, a backstop for penalty plateaus
  // Standard NM coefficients.
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

class NelderMead {
 public:
  NelderMead(const SearchSpace& space, Objective objective,
             Constraint constraint = nullptr,
             NelderMeadOptions options = {});

  // Overrides the default (centre-of-space) initial simplex; needs
  // exactly dims()+1 points in value coordinates.
  void set_initial_simplex(const std::vector<Config>& vertices);

  SearchResult run();

 private:
  double evaluate(const std::vector<double>& point, SearchResult& result);

  const SearchSpace& space_;
  Objective objective_;
  Constraint constraint_;
  NelderMeadOptions options_;
  std::vector<std::vector<double>> simplex_;
};

}  // namespace offt::tune
