#include "tune/tuner.hpp"

#include "util/check.hpp"
#include "util/timer.hpp"

namespace offt::tune {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::NelderMeadSearch: return "nelder-mead";
    case Strategy::RandomSearch: return "random";
    case Strategy::ExhaustiveSearch: return "exhaustive";
  }
  return "?";
}

Strategy strategy_by_name(const std::string& name) {
  if (name == "nelder-mead" || name == "nm") return Strategy::NelderMeadSearch;
  if (name == "random") return Strategy::RandomSearch;
  if (name == "exhaustive") return Strategy::ExhaustiveSearch;
  OFFT_CHECK_MSG(false, "unknown strategy '" << name << "'");
  return Strategy::NelderMeadSearch;
}

TuneOutcome tune(const SearchSpace& space, const Objective& objective,
                 const Constraint& constraint, const TuneOptions& options) {
  TuneOutcome outcome;
  const double t0 = util::wall_now();
  switch (options.strategy) {
    case Strategy::NelderMeadSearch: {
      NelderMead nm(space, objective, constraint, options.nm);
      if (!options.initial_simplex.empty())
        nm.set_initial_simplex(options.initial_simplex);
      outcome.search = nm.run();
      break;
    }
    case Strategy::RandomSearch:
      outcome.search = random_search(space, objective, constraint,
                                     options.random_samples, options.seed);
      break;
    case Strategy::ExhaustiveSearch:
      outcome.search = exhaustive_search(space, objective, constraint);
      break;
  }
  outcome.wall_seconds = util::wall_now() - t0;
  return outcome;
}

}  // namespace offt::tune
