#include "tune/search_space.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace offt::tune {

std::vector<long long> log_scale_values(long long lo, long long hi) {
  OFFT_CHECK_MSG(lo >= 1 && hi >= lo, "invalid log-scale range");
  std::vector<long long> v;
  v.push_back(lo);
  for (long long p = 1; p <= hi; p *= 2) {
    if (p > lo && p < hi) v.push_back(p);
    if (p > hi / 2) break;  // avoid overflow
  }
  if (hi != lo) v.push_back(hi);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void SearchSpace::add(std::string name, std::vector<long long> values) {
  OFFT_CHECK_MSG(!values.empty(), "parameter needs at least one candidate");
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  params_.push_back({std::move(name), std::move(values)});
}

void SearchSpace::add_log_scale(std::string name, long long lo, long long hi) {
  add(std::move(name), log_scale_values(lo, hi));
}

std::size_t SearchSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (params_[i].name == name) return i;
  OFFT_CHECK_MSG(false, "unknown parameter '" << name << "'");
  return 0;
}

double SearchSpace::total_configs() const {
  double total = 1.0;
  for (const auto& p : params_) total *= static_cast<double>(p.values.size());
  return total;
}

Config SearchSpace::snap(const std::vector<double>& point) const {
  OFFT_CHECK(point.size() == params_.size());
  Config c(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& vals = params_[i].values;
    const double clamped = std::clamp(
        point[i], 0.0, static_cast<double>(vals.size() - 1));
    c[i] = vals[static_cast<std::size_t>(std::llround(clamped))];
  }
  return c;
}

double SearchSpace::nearest_index(std::size_t i, long long value) const {
  const auto& vals = params_[i].values;
  std::size_t best = 0;
  long long best_dist = std::numeric_limits<long long>::max();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    const long long d = std::llabs(vals[k] - value);
    if (d < best_dist) {
      best_dist = d;
      best = k;
    }
  }
  return static_cast<double>(best);
}

std::vector<double> SearchSpace::to_point(const Config& config) const {
  OFFT_CHECK(config.size() == params_.size());
  std::vector<double> pt(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    pt[i] = nearest_index(i, config[i]);
  return pt;
}

Config SearchSpace::random_config(util::Rng& rng) const {
  Config c(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& vals = params_[i].values;
    c[i] = vals[rng.next_below(vals.size())];
  }
  return c;
}

std::vector<Config> SearchSpace::enumerate(std::size_t limit) const {
  OFFT_CHECK_MSG(total_configs() <= static_cast<double>(limit),
                 "space too large to enumerate");
  std::vector<Config> out;
  if (params_.empty()) {
    out.push_back({});
    return out;
  }
  Config cur(params_.size());
  std::vector<std::size_t> idx(params_.size(), 0);
  for (;;) {
    for (std::size_t i = 0; i < params_.size(); ++i)
      cur[i] = params_[i].values[idx[i]];
    out.push_back(cur);
    // Odometer increment, last dimension fastest.
    std::size_t d = params_.size();
    while (d > 0) {
      --d;
      if (++idx[d] < params_[d].values.size()) break;
      idx[d] = 0;
      if (d == 0) return out;
    }
  }
}

}  // namespace offt::tune
