// Baseline search strategies: uniform random sampling (the comparison
// point of §5.3.1) and exhaustive enumeration (for tiny spaces / tests).
#pragma once

#include <cstdint>

#include "tune/search_space.hpp"

namespace offt::tune {

// Samples `samples` configurations uniformly at random (with the same
// penalty and history-cache semantics as NelderMead: infeasible points
// cost nothing, repeats are served from cache).
SearchResult random_search(const SearchSpace& space, const Objective& objective,
                           const Constraint& constraint, int samples,
                           std::uint64_t seed);

// Evaluates every configuration (feasible ones only).
SearchResult exhaustive_search(const SearchSpace& space,
                               const Objective& objective,
                               const Constraint& constraint);

}  // namespace offt::tune
