#include "tune/nelder_mead.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace offt::tune {

namespace {

// The history cache and the simplex bookkeeping live per run().
struct EvalCache {
  std::map<Config, double> values;
};

}  // namespace

NelderMead::NelderMead(const SearchSpace& space, Objective objective,
                       Constraint constraint, NelderMeadOptions options)
    : space_(space),
      objective_(std::move(objective)),
      constraint_(std::move(constraint)),
      options_(options) {
  OFFT_CHECK_MSG(space_.dims() >= 1, "empty search space");
  // Default initial simplex: the centre of the index space plus one step
  // along each axis.
  const std::size_t d = space_.dims();
  std::vector<double> centre(d);
  for (std::size_t i = 0; i < d; ++i)
    centre[i] = static_cast<double>(space_.param(i).values.size() - 1) / 2.0;
  simplex_.assign(d + 1, centre);
  for (std::size_t i = 0; i < d; ++i) {
    const double span = static_cast<double>(space_.param(i).values.size() - 1);
    simplex_[i + 1][i] += std::max(1.0, span / 4.0);
  }
}

void NelderMead::set_initial_simplex(const std::vector<Config>& vertices) {
  OFFT_CHECK_MSG(vertices.size() == space_.dims() + 1,
                 "initial simplex needs dims()+1 vertices");
  simplex_.clear();
  for (const Config& v : vertices) simplex_.push_back(space_.to_point(v));
}

SearchResult NelderMead::run() {
  const std::size_t d = space_.dims();
  SearchResult result;
  EvalCache cache;

  auto eval = [&](const std::vector<double>& pt) -> double {
    const Config config = space_.snap(pt);
    if (const auto it = cache.values.find(config); it != cache.values.end()) {
      ++result.cache_hits;
      return it->second;
    }
    double value;
    if (constraint_ && !constraint_(config)) {
      // Penalty technique: never run an infeasible configuration.
      value = kInfeasible;
      ++result.penalized;
    } else {
      if (result.evaluations >= options_.max_evaluations) return kInfeasible;
      value = objective_(config);
      ++result.evaluations;
    }
    cache.values.emplace(config, value);
    if (value < result.best_value) {
      result.best_value = value;
      result.best = config;
    }
    result.trace.push_back(result.best_value);
    return value;
  };

  std::vector<double> fvals(d + 1);
  for (std::size_t i = 0; i <= d; ++i) fvals[i] = eval(simplex_[i]);

  // If every initial vertex is infeasible the simplex has no gradient to
  // follow (all values are +inf).  Mirror Active Harmony's behaviour of
  // suggesting fresh configurations: probe random points until one is
  // feasible, then re-anchor the simplex there.
  if (result.best_value == kInfeasible) {
    util::Rng rng(0x5eed);
    for (int attempt = 0;
         attempt < 64 && result.best_value == kInfeasible &&
         result.evaluations < options_.max_evaluations;
         ++attempt) {
      eval(space_.to_point(space_.random_config(rng)));
    }
    if (result.best_value < kInfeasible) {
      const std::vector<double> anchor = space_.to_point(result.best);
      simplex_.assign(d + 1, anchor);
      for (std::size_t i = 0; i < d; ++i) {
        const double hi =
            static_cast<double>(space_.param(i).values.size() - 1);
        simplex_[i + 1][i] += (anchor[i] + 1.0 <= hi) ? 1.0 : -1.0;
      }
      for (std::size_t i = 0; i <= d; ++i) fvals[i] = eval(simplex_[i]);
    }
  }

  auto order = [&] {
    std::vector<std::size_t> idx(d + 1);
    for (std::size_t i = 0; i <= d; ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return fvals[a] < fvals[b];
    });
    std::vector<std::vector<double>> s2(d + 1);
    std::vector<double> f2(d + 1);
    for (std::size_t i = 0; i <= d; ++i) {
      s2[i] = simplex_[idx[i]];
      f2[i] = fvals[idx[i]];
    }
    simplex_.swap(s2);
    fvals.swap(f2);
  };

  for (int iter = 0; iter < options_.max_iterations &&
                     result.evaluations < options_.max_evaluations;
       ++iter) {
    order();

    // Converged once every vertex snaps to the same configuration.
    bool collapsed = true;
    const Config first = space_.snap(simplex_[0]);
    for (std::size_t i = 1; i <= d && collapsed; ++i)
      collapsed = (space_.snap(simplex_[i]) == first);
    if (collapsed) break;

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(d, 0.0);
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = 0; j < d; ++j) centroid[j] += simplex_[i][j];
    for (double& c : centroid) c /= static_cast<double>(d);

    auto blend = [&](double coeff) {
      std::vector<double> p(d);
      for (std::size_t j = 0; j < d; ++j)
        p[j] = centroid[j] + coeff * (simplex_[d][j] - centroid[j]);
      return p;
    };

    const std::vector<double> reflected = blend(-options_.reflection);
    const double fr = eval(reflected);

    if (fr < fvals[0]) {
      const std::vector<double> expanded =
          blend(-options_.reflection * options_.expansion);
      const double fe = eval(expanded);
      if (fe < fr) {
        simplex_[d] = expanded;
        fvals[d] = fe;
      } else {
        simplex_[d] = reflected;
        fvals[d] = fr;
      }
    } else if (fr < fvals[d - 1]) {
      simplex_[d] = reflected;
      fvals[d] = fr;
    } else {
      // Contract toward the better of (worst, reflected).
      const bool outside = fr < fvals[d];
      const std::vector<double> contracted =
          outside ? blend(-options_.reflection * options_.contraction)
                  : blend(options_.contraction);
      const double fc = eval(contracted);
      if (fc < std::min(fr, fvals[d])) {
        simplex_[d] = contracted;
        fvals[d] = fc;
      } else {
        // Shrink everything toward the best vertex.
        for (std::size_t i = 1; i <= d; ++i) {
          for (std::size_t j = 0; j < d; ++j)
            simplex_[i][j] = simplex_[0][j] +
                             options_.shrink * (simplex_[i][j] - simplex_[0][j]);
          fvals[i] = eval(simplex_[i]);
        }
      }
    }
  }

  order();
  if (result.best.empty() && !simplex_.empty())
    result.best = space_.snap(simplex_[0]);
  return result;
}

}  // namespace offt::tune
