// Discrete parameter spaces for auto-tuning.
//
// Mirrors the paper's search-space reduction technique (§4.4): instead of
// every integer in [min, max], each parameter's candidate list holds the
// powers of two inside the range plus the exact bounds, shrinking a
// billions-sized space to something a simplex search can traverse.
// Feasibility constraints that couple parameters (e.g. Pz <= T) are
// expressed as a predicate over whole configurations and handled by the
// searcher's penalty mechanism, not by the space itself.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace offt::tune {

// One concrete parameter assignment, value per dimension in space order.
using Config = std::vector<long long>;

// Measured performance of a configuration; smaller is better.  Infeasible
// configurations are reported as +infinity without running the target.
using Objective = std::function<double(const Config&)>;
using Constraint = std::function<bool(const Config&)>;

inline constexpr double kInfeasible = std::numeric_limits<double>::infinity();

// Powers of two within [lo, hi], always including lo and hi themselves.
std::vector<long long> log_scale_values(long long lo, long long hi);

struct ParamDef {
  std::string name;
  std::vector<long long> values;  // sorted, unique candidates
};

class SearchSpace {
 public:
  // Adds a parameter with an explicit candidate list (sorted, deduped).
  void add(std::string name, std::vector<long long> values);
  // Adds a parameter with the paper's log-scale reduction of [lo, hi].
  void add_log_scale(std::string name, long long lo, long long hi);

  std::size_t dims() const { return params_.size(); }
  const ParamDef& param(std::size_t i) const { return params_[i]; }
  // Index of `name`; throws if absent.
  std::size_t index_of(const std::string& name) const;

  // Number of configurations in the reduced space.
  double total_configs() const;

  // Maps a continuous point in index coordinates (dimension i ranges over
  // [0, |values_i|-1]) to the nearest concrete configuration.
  Config snap(const std::vector<double>& point) const;

  // Index coordinates of the candidate closest to `value` in dim `i`.
  double nearest_index(std::size_t i, long long value) const;

  // Continuous index-space point for a concrete configuration.
  std::vector<double> to_point(const Config& config) const;

  Config random_config(util::Rng& rng) const;

  // All configurations, in lexicographic candidate order (use only for
  // small spaces; throws if total_configs() exceeds `limit`).
  std::vector<Config> enumerate(std::size_t limit = 1u << 20) const;

 private:
  std::vector<ParamDef> params_;
};

// Outcome of one search run.
struct SearchResult {
  Config best;
  double best_value = kInfeasible;
  int evaluations = 0;    // objective executions (cache misses, feasible)
  int cache_hits = 0;     // configurations served from history
  int penalized = 0;      // infeasible configurations rejected for free
  // best_value after each *distinct tested* configuration, in test order —
  // feeds the paper's NM-vs-random comparison (§5.3.1).
  std::vector<double> trace;
};

}  // namespace offt::tune
