// Plain-text table printer used by the benchmark harness to emit
// paper-style tables (Table 2, Table 3, ...) on stdout, plus an optional
// CSV mirror for post-processing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace offt::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  // Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  // Renders comma-separated values (header + rows).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  // Formats helpers for numeric cells.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace offt::util
