// Wall-clock and per-thread CPU timers.
//
// The cluster simulator charges compute segments to virtual rank clocks
// using ThreadCpuClock: on Linux this reads CLOCK_THREAD_CPUTIME_ID, which
// keeps ticking only while the calling thread runs, so measurements are
// immune to the thread being descheduled (essential when many simulated
// ranks share one physical core).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#define OFFT_HAS_THREAD_CPUTIME 1
#endif

namespace offt::util {

// Seconds as double — the time unit used throughout the library.
using Seconds = double;

inline Seconds wall_now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

inline Seconds thread_cpu_now() {
#ifdef OFFT_HAS_THREAD_CPUTIME
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
#else
  return wall_now();
#endif
}

// Simple accumulating stopwatch over an arbitrary "now" function.
class Stopwatch {
 public:
  using NowFn = Seconds (*)();

  explicit Stopwatch(NowFn now = &wall_now) : now_(now) {}

  void start() { start_ = now_(); running_ = true; }
  void stop() {
    if (running_) { total_ += now_() - start_; running_ = false; }
  }
  void reset() { total_ = 0.0; running_ = false; }
  Seconds elapsed() const {
    return running_ ? total_ + (now_() - start_) : total_;
  }

 private:
  NowFn now_;
  Seconds start_ = 0.0;
  Seconds total_ = 0.0;
  bool running_ = false;
};

}  // namespace offt::util
