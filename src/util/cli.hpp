// Tiny command-line flag parser for the bench/example binaries.
//
//   util::Cli cli(argc, argv);
//   int p = cli.get_int("ranks", 8);
//   bool quick = cli.has("quick");
//
// Accepted syntaxes: --name=value, --name value, --flag.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace offt::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, std::string def) const;
  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;

  // Comma-separated integer list, e.g. --sizes=64,96,128.
  std::vector<long long> get_int_list(const std::string& name,
                                      std::vector<long long> def) const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace offt::util
