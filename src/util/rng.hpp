// Small deterministic PRNG (splitmix64 + xoshiro256**) used for test data,
// random workloads and random parameter search.  Deliberately independent
// of std::mt19937 so that sequences are identical across standard-library
// implementations, which keeps benchmark workloads reproducible.
#pragma once

#include <cstdint>

namespace offt::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next();
  }

  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi].
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace offt::util
