// Summary statistics over timing samples.
#pragma once

#include <cstddef>
#include <vector>

namespace offt::util {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

// Computes the summary of `samples`.  Empty input yields a zero summary.
Summary summarize(const std::vector<double>& samples);

// Linear-interpolated percentile, q in [0, 100].  Empty input yields 0.
double percentile(std::vector<double> samples, double q);

// Fraction of `samples` that are <= x (empirical CDF evaluated at x).
double cdf_at(const std::vector<double>& samples, double x);

}  // namespace offt::util
