// Cache-line / SIMD aligned storage for FFT working arrays.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace offt::util {

inline constexpr std::size_t kDefaultAlignment = 64;

// Minimal allocator that over-aligns allocations to `Align` bytes.
// Used with std::vector to keep FFT pencils on cache-line boundaries.
template <typename T, std::size_t Align = kDefaultAlignment>
struct AlignedAllocator {
  using value_type = T;

  // std::allocator_traits cannot rebind through a non-type template
  // parameter on its own, so spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace offt::util
