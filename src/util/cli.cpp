#include "util/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace offt::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // "--name value".  A bare "--name" followed by another "--..." flag
      // (or at the end of the line) is a boolean switch; mixed styles should
      // prefer "--name=value".
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get_string(const std::string& name, std::string def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() || it->second.empty() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() || it->second.empty()
             ? def
             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() || it->second.empty()
             ? def
             : std::strtod(it->second.c_str(), nullptr);
}

std::vector<long long> Cli::get_int_list(const std::string& name,
                                         std::vector<long long> def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  std::vector<long long> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out.empty() ? def : out;
}

}  // namespace offt::util
