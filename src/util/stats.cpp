#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace offt::util {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

  double ss = 0.0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return s;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = (q / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double cdf_at(const std::vector<double>& samples, double x) {
  if (samples.empty()) return 0.0;
  std::size_t c = 0;
  for (double v : samples)
    if (v <= x) ++c;
  return static_cast<double>(c) / static_cast<double>(samples.size());
}

}  // namespace offt::util
