#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace offt::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&] {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(width[c])) << cells[c] << ' ';
    }
    os << "|\n";
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

}  // namespace offt::util
