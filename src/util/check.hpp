// Lightweight runtime assertion macros used across the library.
//
// OFFT_CHECK is always active (release builds included): it guards
// user-facing API contracts.  OFFT_DCHECK compiles away in release builds
// and guards internal invariants on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace offt::util {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace offt::util

#define OFFT_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr))                                                         \
      ::offt::util::check_failed(__FILE__, __LINE__, #expr, {});         \
  } while (0)

#define OFFT_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::offt::util::check_failed(__FILE__, __LINE__, #expr, os_.str());  \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define OFFT_DCHECK(expr) ((void)0)
#else
#define OFFT_DCHECK(expr) OFFT_CHECK(expr)
#endif
