#include "fft/real.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace offt::fft {

namespace {

ComplexVector& r2c_scratch(std::size_t n) {
  thread_local ComplexVector buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

}  // namespace

PlanR2c::PlanR2c(std::size_t n, PlanOptions options)
    : n_(n),
      half_fwd_(n / 2 == 0 ? 1 : n / 2, Direction::Forward, options),
      half_bwd_(n / 2 == 0 ? 1 : n / 2, Direction::Backward, options) {
  OFFT_CHECK_MSG(n >= 2 && n % 2 == 0,
                 "PlanR2c needs an even length (half-length packing)");
  const std::size_t m = n_ / 2;
  twiddles_.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double phase = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n_);
    twiddles_[k] = {std::cos(phase), std::sin(phase)};
  }
}

void PlanR2c::execute(const double* in, Complex* out) const {
  const std::size_t m = n_ / 2;
  // Pack x[2j] + i*x[2j+1] and transform once at half length.
  ComplexVector& z = r2c_scratch(2 * m);
  Complex* zf = z.data() + m;
  for (std::size_t j = 0; j < m; ++j) z[j] = {in[2 * j], in[2 * j + 1]};
  half_fwd_.execute(z.data(), zf);

  // Untangle: E[k] = (Z[k]+conj(Z[m-k]))/2 is the spectrum of the even
  // samples, O[k] = (Z[k]-conj(Z[m-k]))/(2i) of the odd samples, and
  // X[k] = E[k] + w^k O[k] with w = exp(-2*pi*i/n).
  for (std::size_t k = 0; k < m; ++k) {
    const Complex zk = zf[k];
    const Complex zc = std::conj(zf[(m - k) % m]);
    const Complex e = 0.5 * (zk + zc);
    const Complex d = 0.5 * (zk - zc);
    const Complex o{d.imag(), -d.real()};  // d / i
    out[k] = e + twiddles_[k] * o;
  }
  // Nyquist bin: w^m = -1, built from the DC parts of E and O.
  const Complex z0 = zf[0];
  out[m] = {z0.real() - z0.imag(), 0.0};
  // Enforce the exactly-real DC bin (it is real analytically).
  out[0] = {out[0].real(), 0.0};
}

void PlanR2c::execute_c2r(const Complex* in, double* out) const {
  const std::size_t m = n_ / 2;
  // Retangle (factors of 2 folded in so the unnormalized backward
  // transform yields exactly n * x):
  //   E'[k]      = X[k] + conj(X[m-k])
  //   w^k O'[k]  = X[k] - conj(X[m-k])
  //   Z'[k]      = E'[k] + i * O'[k]
  ComplexVector& z = r2c_scratch(2 * m);
  Complex* zt = z.data() + m;
  for (std::size_t k = 0; k < m; ++k) {
    const Complex xk = in[k];
    const Complex xc = std::conj(in[m - k]);
    const Complex e = xk + xc;
    const Complex wo = xk - xc;
    const Complex o = std::conj(twiddles_[k]) * wo;
    zt[k] = e + Complex{-o.imag(), o.real()};  // e + i*o
  }
  half_bwd_.execute(zt, z.data());
  // B[j] = sum_k Z'[k] e^{2 pi i jk/m} = 2m * z[j] = n * z[j]: exactly the
  // unnormalized c2r convention.
  for (std::size_t j = 0; j < m; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

}  // namespace offt::fft
