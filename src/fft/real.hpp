// Real-to-complex (r2c) and complex-to-real (c2r) 1-D transforms via the
// classic half-length complex trick (Sorensen et al. 1987, the technique
// the paper cites in §2.3): a real signal of even length n is packed into
// a complex signal of length n/2, transformed once, and untangled with
// one pass of twiddles — roughly half the work of a complex transform.
//
// Conventions match FFTW's r2c/c2r: the forward transform of n reals
// produces n/2+1 complex coefficients (the non-negative frequencies; the
// rest follow from conjugate symmetry), and the backward transform is
// unnormalized (c2r(r2c(x)) == n * x).
#pragma once

#include "fft/plan1d.hpp"

namespace offt::fft {

class PlanR2c {
 public:
  // n must be even (the half-length trick needs it).
  explicit PlanR2c(std::size_t n, PlanOptions options = {});

  std::size_t size() const { return n_; }
  // Number of complex outputs: n/2 + 1.
  std::size_t spectrum_size() const { return n_ / 2 + 1; }

  // Forward: n reals -> n/2+1 complex coefficients.
  void execute(const double* in, Complex* out) const;

  // Backward: n/2+1 complex coefficients -> n reals (unnormalized).
  // The imaginary parts of in[0] and in[n/2] are ignored (they are zero
  // for any spectrum of a real signal).
  void execute_c2r(const Complex* in, double* out) const;

 private:
  std::size_t n_;
  Plan1d half_fwd_;
  Plan1d half_bwd_;
  ComplexVector twiddles_;  // exp(-2*pi*i*k/n), k in [0, n/2)
};

}  // namespace offt::fft
