// Local memory-layout rearrangements.
//
// The 3-D pipeline only ever needs two families of permutation, and both
// reduce to 2-D matrix transposes:
//   x-y-z -> z-x-y  == transpose of an (X*Y) x Z matrix,
//   x-y-z -> x-z-y  == X independent transposes of Y x Z matrices
//                      (the Nx == Ny fast path of §3.5).
// Cache-blocked variants are the "FFTW guru transpose" stand-ins used by
// the NEW method; naive variants model the simpler transpose of the TH
// baseline (the paper's Fig. 8 shows TH spending much longer in
// Transpose).
#pragma once

#include <cstddef>

#include "fft/types.hpp"

namespace offt::fft {

// out[c*rows + r] = in[r*cols + c].  in and out must not alias.
void transpose_2d_naive(const Complex* in, std::size_t rows, std::size_t cols,
                        Complex* out);

// Same mapping, iterated over cache-sized blocks.
void transpose_2d_blocked(const Complex* in, std::size_t rows,
                          std::size_t cols, Complex* out,
                          std::size_t block = 32);

// In-place transpose of a square n x n matrix (blocked).
void transpose_2d_inplace_square(Complex* a, std::size_t n,
                                 std::size_t block = 32);

// 3-D permutations over a slab of X*Y*Z elements in row-major x-y-z order
// (z fastest).  `blocked` selects the cache-blocked kernel.
void permute_xyz_to_zxy(const Complex* in, std::size_t x, std::size_t y,
                        std::size_t z, Complex* out, bool blocked = true);
void permute_zxy_to_xyz(const Complex* in, std::size_t x, std::size_t y,
                        std::size_t z, Complex* out, bool blocked = true);
void permute_xyz_to_xzy(const Complex* in, std::size_t x, std::size_t y,
                        std::size_t z, Complex* out, bool blocked = true);

}  // namespace offt::fft
