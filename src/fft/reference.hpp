// Slow, obviously-correct reference transforms used by the test suites and
// by the serial 3-D FFT that validates the distributed pipeline.
#pragma once

#include <cstddef>

#include "fft/types.hpp"

namespace offt::fft {

// O(n^2) direct DFT.  in and out must not alias.
void dft_1d_naive(const Complex* in, Complex* out, std::size_t n,
                  Direction dir);

// Serial 3-D FFT over a contiguous row-major x-y-z array (z fastest),
// transforming along all three dimensions in place.  Cost is
// O(n^3 log n) via Plan1d; this is the ground truth for the distributed
// pipeline and the workhorse for single-process examples.
void fft3d_serial(Complex* data, std::size_t nx, std::size_t ny,
                  std::size_t nz, Direction dir);

// O((nx*ny*nz)*(nx+ny+nz)) triple naive DFT, for tiny validation cases.
void dft3d_naive(const Complex* in, Complex* out, std::size_t nx,
                 std::size_t ny, std::size_t nz, Direction dir);

}  // namespace offt::fft
