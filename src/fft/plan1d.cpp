#include "fft/plan1d.hpp"

#include <cmath>
#include <cstring>
#include <numbers>
#include <unordered_map>

#include "util/check.hpp"

namespace offt::fft {

namespace {

// Thread-local scratch buffers.  Each call site asks for a distinct slot so
// nested uses (e.g. Bluestein's inner transforms while an outer execute is
// gathering strided data) never alias.
ComplexVector& tls_scratch(int slot, std::size_t n) {
  thread_local std::unordered_map<int, ComplexVector> buffers;
  ComplexVector& buf = buffers[slot];
  if (buf.size() < n) buf.resize(n);
  return buf;
}

inline Complex mul_by_i(Complex v, double sign) {
  // sign * i * v
  return {-sign * v.imag(), sign * v.real()};
}

}  // namespace

struct Plan1d::Bluestein {
  // Chirp c[j] = exp(sign * pi * i * j^2 / n); the transform becomes
  //   X[k] = c[k] * IDFT_M(DFT_M(x .* c) .* B)[k]
  // where B is the DFT of the wrapped conjugate chirp and M >= 2n-1 is a
  // power of two (so the inner transforms never recurse into Bluestein).
  std::size_t m = 0;
  ComplexVector chirp;    // c[j], j in [0, n)
  ComplexVector b_freq;   // DFT_M of wrapped conj chirp, pre-scaled by 1/M
  std::unique_ptr<Plan1d> fwd;
  std::unique_ptr<Plan1d> bwd;
};

Plan1d::~Plan1d() = default;
Plan1d::Plan1d(Plan1d&&) noexcept = default;
Plan1d& Plan1d::operator=(Plan1d&&) noexcept = default;

Plan1d::Plan1d(std::size_t n, Direction dir, PlanOptions options)
    : n_(n), dir_(dir), options_(std::move(options)) {
  OFFT_CHECK_MSG(n >= 1, "FFT length must be positive");
  if (largest_prime_factor(n_) > kBluesteinThreshold) {
    build_bluestein();
  } else {
    stages_ = factorize(n_, options_.radix_preference);
    build_twiddles();
  }
}

void Plan1d::build_twiddles() {
  const double sign = direction_sign(dir_);
  twiddles_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double phase =
        sign * 2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n_);
    twiddles_[k] = {std::cos(phase), std::sin(phase)};
  }
}

void Plan1d::build_bluestein() {
  bluestein_ = std::make_unique<Bluestein>();
  Bluestein& bs = *bluestein_;
  bs.m = next_pow2(2 * n_ - 1);

  const double sign = direction_sign(dir_);
  bs.chirp.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    // j^2 mod 2n keeps the phase argument small and exact.
    const std::size_t j2 = (j * j) % (2 * n_);
    const double phase = sign * std::numbers::pi * static_cast<double>(j2) /
                         static_cast<double>(n_);
    bs.chirp[j] = {std::cos(phase), std::sin(phase)};
  }

  bs.fwd = std::make_unique<Plan1d>(bs.m, Direction::Forward);
  bs.bwd = std::make_unique<Plan1d>(bs.m, Direction::Backward);

  ComplexVector b(bs.m, Complex{0.0, 0.0});
  b[0] = std::conj(bs.chirp[0]);
  for (std::size_t j = 1; j < n_; ++j) {
    b[j] = std::conj(bs.chirp[j]);
    b[bs.m - j] = std::conj(bs.chirp[j]);
  }
  bs.b_freq.resize(bs.m);
  bs.fwd->execute(b.data(), bs.b_freq.data());
  const double inv_m = 1.0 / static_cast<double>(bs.m);
  for (auto& v : bs.b_freq) v *= inv_m;
}

void Plan1d::butterfly2(Complex* fout, std::size_t fstride,
                        std::size_t m) const {
  const Complex* tw = twiddles_.data();
  for (std::size_t k = 0; k < m; ++k) {
    const Complex t = fout[k + m] * tw[k * fstride];
    fout[k + m] = fout[k] - t;
    fout[k] += t;
  }
}

void Plan1d::butterfly3(Complex* fout, std::size_t fstride,
                        std::size_t m) const {
  const Complex* tw = twiddles_.data();
  // F1 = x0 - s1/2 + sign*i*(sqrt(3)/2)*s2, F2 mirrors the imaginary term.
  const double sign = direction_sign(dir_);
  const double half_sqrt3 = 0.86602540378443864676;
  for (std::size_t k = 0; k < m; ++k) {
    const Complex x1 = fout[k + m] * tw[k * fstride];
    const Complex x2 = fout[k + 2 * m] * tw[2 * k * fstride];
    const Complex s1 = x1 + x2;
    const Complex s2 = x1 - x2;
    const Complex x0 = fout[k];
    const Complex base = x0 - 0.5 * s1;
    const Complex rot = mul_by_i(s2, sign) * half_sqrt3;
    fout[k] = x0 + s1;
    fout[k + m] = base + rot;
    fout[k + 2 * m] = base - rot;
  }
}

void Plan1d::butterfly4(Complex* fout, std::size_t fstride,
                        std::size_t m) const {
  const Complex* tw = twiddles_.data();
  const double sign = direction_sign(dir_);
  for (std::size_t k = 0; k < m; ++k) {
    const Complex x0 = fout[k];
    const Complex x1 = fout[k + m] * tw[k * fstride];
    const Complex x2 = fout[k + 2 * m] * tw[2 * k * fstride];
    const Complex x3 = fout[k + 3 * m] * tw[3 * k * fstride];
    const Complex y0 = x0 + x2;
    const Complex y1 = x0 - x2;
    const Complex y2 = x1 + x3;
    const Complex y3 = mul_by_i(x1 - x3, sign);
    fout[k] = y0 + y2;
    fout[k + 2 * m] = y0 - y2;
    fout[k + m] = y1 + y3;
    fout[k + 3 * m] = y1 - y3;
  }
}

void Plan1d::butterfly5(Complex* fout, std::size_t fstride,
                        std::size_t m) const {
  const Complex* tw = twiddles_.data();
  const double sign = direction_sign(dir_);
  const double c1 = 0.30901699437494742410;   // cos(2*pi/5)
  const double c2 = -0.80901699437494742410;  // cos(4*pi/5)
  const double s1 = sign * 0.95105651629515357212;  // sign*sin(2*pi/5)
  const double s2 = sign * 0.58778525229247312917;  // sign*sin(4*pi/5)
  for (std::size_t k = 0; k < m; ++k) {
    const Complex x0 = fout[k];
    const Complex x1 = fout[k + m] * tw[k * fstride];
    const Complex x2 = fout[k + 2 * m] * tw[2 * k * fstride];
    const Complex x3 = fout[k + 3 * m] * tw[3 * k * fstride];
    const Complex x4 = fout[k + 4 * m] * tw[4 * k * fstride];
    const Complex t1 = x1 + x4;
    const Complex t2 = x2 + x3;
    const Complex t3 = x1 - x4;
    const Complex t4 = x2 - x3;
    const Complex ea = x0 + c1 * t1 + c2 * t2;
    const Complex eb = x0 + c2 * t1 + c1 * t2;
    const Complex ia = mul_by_i(s1 * t3 + s2 * t4, 1.0);
    const Complex ib = mul_by_i(s2 * t3 - s1 * t4, 1.0);
    fout[k] = x0 + t1 + t2;
    fout[k + m] = ea + ia;
    fout[k + 4 * m] = ea - ia;
    fout[k + 2 * m] = eb + ib;
    fout[k + 3 * m] = eb - ib;
  }
}

void Plan1d::butterfly_generic(Complex* fout, std::size_t fstride,
                               std::size_t m, std::size_t radix) const {
  const Complex* tw = twiddles_.data();
  ComplexVector& scratch = tls_scratch(0, radix);
  for (std::size_t u = 0; u < m; ++u) {
    std::size_t k = u;
    for (std::size_t q1 = 0; q1 < radix; ++q1) {
      scratch[q1] = fout[k];
      k += m;
    }
    k = u;
    for (std::size_t q1 = 0; q1 < radix; ++q1) {
      std::size_t twidx = 0;
      Complex acc = scratch[0];
      for (std::size_t q = 1; q < radix; ++q) {
        twidx += fstride * k;
        if (twidx >= n_) twidx %= n_;
        acc += scratch[q] * tw[twidx];
      }
      fout[k] = acc;
      k += m;
    }
  }
}

void Plan1d::work(Complex* fout, const Complex* f, std::size_t fstride,
                  std::ptrdiff_t in_stride, std::size_t stage) const {
  const Stage st = stages_[stage];
  const std::size_t radix = st.radix;
  const std::size_t m = st.m;
  if (m == 1) {
    for (std::size_t q = 0; q < radix; ++q)
      fout[q] = f[static_cast<std::ptrdiff_t>(q * fstride) * in_stride];
  } else {
    for (std::size_t q = 0; q < radix; ++q)
      work(fout + q * m, f + static_cast<std::ptrdiff_t>(q * fstride) * in_stride,
           fstride * radix, in_stride, stage + 1);
  }
  switch (radix) {
    case 2: butterfly2(fout, fstride, m); break;
    case 3: butterfly3(fout, fstride, m); break;
    case 4: butterfly4(fout, fstride, m); break;
    case 5: butterfly5(fout, fstride, m); break;
    default: butterfly_generic(fout, fstride, m, radix); break;
  }
}

void Plan1d::execute_direct(const Complex* in, std::ptrdiff_t in_stride,
                            Complex* out) const {
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  work(out, in, 1, in_stride, 0);
}

void Plan1d::execute_bluestein(const Complex* in, std::ptrdiff_t in_stride,
                               Complex* out) const {
  const Bluestein& bs = *bluestein_;
  ComplexVector& a = tls_scratch(1, bs.m);
  for (std::size_t j = 0; j < n_; ++j)
    a[j] = in[static_cast<std::ptrdiff_t>(j) * in_stride] * bs.chirp[j];
  std::memset(static_cast<void*>(a.data() + n_), 0,
              (bs.m - n_) * sizeof(Complex));

  ComplexVector& freq = tls_scratch(2, bs.m);
  bs.fwd->execute(a.data(), freq.data());
  for (std::size_t j = 0; j < bs.m; ++j) freq[j] *= bs.b_freq[j];
  bs.bwd->execute(freq.data(), a.data());
  for (std::size_t k = 0; k < n_; ++k) out[k] = a[k] * bs.chirp[k];
}

void Plan1d::execute(const Complex* in, Complex* out) const {
  if (bluestein_) {
    // Bluestein writes out only after it has fully consumed the input, so
    // in == out is safe (input is copied into scratch first).
    execute_bluestein(in, 1, out);
    return;
  }
  if (in == out) {
    ComplexVector& s = tls_scratch(3, n_);
    execute_direct(in, 1, s.data());
    std::memcpy(static_cast<void*>(out), s.data(), n_ * sizeof(Complex));
  } else {
    execute_direct(in, 1, out);
  }
}

void Plan1d::execute_many(const Complex* in, std::ptrdiff_t in_dist,
                          Complex* out, std::ptrdiff_t out_dist,
                          std::size_t count) const {
  for (std::size_t t = 0; t < count; ++t) {
    execute(in + static_cast<std::ptrdiff_t>(t) * in_dist,
            out + static_cast<std::ptrdiff_t>(t) * out_dist);
  }
}

void Plan1d::execute_strided(const Complex* in, std::ptrdiff_t in_stride,
                             Complex* out, std::ptrdiff_t out_stride) const {
  if (in_stride == 1 && out_stride == 1 && in != out) {
    execute(in, out);
    return;
  }
  ComplexVector& s = tls_scratch(4, n_);
  if (bluestein_) {
    execute_bluestein(in, in_stride, s.data());
  } else {
    execute_direct(in, in_stride, s.data());
  }
  for (std::size_t k = 0; k < n_; ++k)
    out[static_cast<std::ptrdiff_t>(k) * out_stride] = s[k];
}

void scale(Complex* data, std::size_t count, double factor) {
  for (std::size_t i = 0; i < count; ++i) data[i] *= factor;
}

}  // namespace offt::fft
