#include "fft/transpose.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace offt::fft {

void transpose_2d_naive(const Complex* in, std::size_t rows, std::size_t cols,
                        Complex* out) {
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) out[c * rows + r] = in[r * cols + c];
}

void transpose_2d_blocked(const Complex* in, std::size_t rows,
                          std::size_t cols, Complex* out, std::size_t block) {
  OFFT_DCHECK(block >= 1);
  for (std::size_t rb = 0; rb < rows; rb += block) {
    const std::size_t r_end = std::min(rows, rb + block);
    for (std::size_t cb = 0; cb < cols; cb += block) {
      const std::size_t c_end = std::min(cols, cb + block);
      for (std::size_t r = rb; r < r_end; ++r)
        for (std::size_t c = cb; c < c_end; ++c)
          out[c * rows + r] = in[r * cols + c];
    }
  }
}

void transpose_2d_inplace_square(Complex* a, std::size_t n,
                                 std::size_t block) {
  for (std::size_t rb = 0; rb < n; rb += block) {
    const std::size_t r_end = std::min(n, rb + block);
    for (std::size_t cb = rb; cb < n; cb += block) {
      const std::size_t c_end = std::min(n, cb + block);
      for (std::size_t r = rb; r < r_end; ++r) {
        const std::size_t c_start = (cb == rb) ? r + 1 : cb;
        for (std::size_t c = c_start; c < c_end; ++c)
          std::swap(a[r * n + c], a[c * n + r]);
      }
    }
  }
}

void permute_xyz_to_zxy(const Complex* in, std::size_t x, std::size_t y,
                        std::size_t z, Complex* out, bool blocked) {
  // Rows = x*y (the combined slow dims), cols = z.
  if (blocked)
    transpose_2d_blocked(in, x * y, z, out);
  else
    transpose_2d_naive(in, x * y, z, out);
}

void permute_zxy_to_xyz(const Complex* in, std::size_t x, std::size_t y,
                        std::size_t z, Complex* out, bool blocked) {
  if (blocked)
    transpose_2d_blocked(in, z, x * y, out);
  else
    transpose_2d_naive(in, z, x * y, out);
}

void permute_xyz_to_xzy(const Complex* in, std::size_t x, std::size_t y,
                        std::size_t z, Complex* out, bool blocked) {
  for (std::size_t i = 0; i < x; ++i) {
    const Complex* slab_in = in + i * y * z;
    Complex* slab_out = out + i * y * z;
    if (blocked)
      transpose_2d_blocked(slab_in, y, z, slab_out);
    else
      transpose_2d_naive(slab_in, y, z, slab_out);
  }
}

}  // namespace offt::fft
