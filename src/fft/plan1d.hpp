// Batched complex 1-D FFT plans.
//
// A Plan1d is the substrate equivalent of an FFTW plan: it freezes the
// transform length, direction and decomposition (radix order) at
// construction, precomputes twiddle factors, and can then be executed any
// number of times on contiguous or strided data.  The engine is a
// recursive mixed-radix Cooley-Tukey with specialized radix-2/3/4/5
// butterflies and a generic O(r^2) butterfly for other small primes;
// lengths containing a prime factor above kBluesteinThreshold use
// Bluestein's chirp-z algorithm over a power-of-two convolution.
//
// Execution is const and thread-compatible (scratch space is
// thread-local), so one plan may be shared by all simulated ranks.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fft/factorize.hpp"
#include "fft/types.hpp"

namespace offt::fft {

// Prime factors above this are handled via Bluestein instead of the
// generic butterfly (whose cost grows quadratically in the radix).
inline constexpr std::size_t kBluesteinThreshold = 61;

struct PlanOptions {
  // Radix preference order used by factorize(); the planner explores a few
  // of these and measures which is fastest (see planner.hpp).
  std::vector<std::size_t> radix_preference = {4, 2, 3, 5};
};

class Plan1d {
 public:
  Plan1d(std::size_t n, Direction dir, PlanOptions options = {});

  std::size_t size() const { return n_; }
  Direction direction() const { return dir_; }
  bool uses_bluestein() const { return bluestein_ != nullptr; }
  const std::vector<Stage>& stages() const { return stages_; }

  // Single transform over contiguous data.  In-place allowed (in == out).
  void execute(const Complex* in, Complex* out) const;
  void execute_inplace(Complex* data) const { execute(data, data); }

  // `count` transforms; transform t reads in + t*in_dist and writes
  // out + t*out_dist, both contiguous pencils.  In-place allowed when
  // in == out and in_dist == out_dist.
  void execute_many(const Complex* in, std::ptrdiff_t in_dist, Complex* out,
                    std::ptrdiff_t out_dist, std::size_t count) const;
  void execute_many_inplace(Complex* data, std::ptrdiff_t dist,
                            std::size_t count) const {
    execute_many(data, dist, data, dist, count);
  }

  // Single transform whose elements are `stride` apart (gather/scatter
  // through scratch).  In-place allowed.
  void execute_strided(const Complex* in, std::ptrdiff_t in_stride,
                       Complex* out, std::ptrdiff_t out_stride) const;

 private:
  void build_twiddles();
  void build_bluestein();

  // Recursive Cooley-Tukey: writes the length (radix*m of stage `stage`)
  // sub-transform of f (elements `fstride * in_stride` apart) to fout.
  void work(Complex* fout, const Complex* f, std::size_t fstride,
            std::ptrdiff_t in_stride, std::size_t stage) const;

  void butterfly2(Complex* fout, std::size_t fstride, std::size_t m) const;
  void butterfly3(Complex* fout, std::size_t fstride, std::size_t m) const;
  void butterfly4(Complex* fout, std::size_t fstride, std::size_t m) const;
  void butterfly5(Complex* fout, std::size_t fstride, std::size_t m) const;
  void butterfly_generic(Complex* fout, std::size_t fstride, std::size_t m,
                         std::size_t radix) const;

  void execute_direct(const Complex* in, std::ptrdiff_t in_stride,
                      Complex* out) const;
  void execute_bluestein(const Complex* in, std::ptrdiff_t in_stride,
                         Complex* out) const;

  std::size_t n_;
  Direction dir_;
  PlanOptions options_;
  std::vector<Stage> stages_;
  ComplexVector twiddles_;  // twiddles_[k] = exp(sign * 2*pi*i*k / n)

  // Bluestein machinery (only for lengths with a huge prime factor).
  struct Bluestein;
  std::unique_ptr<Bluestein> bluestein_;

 public:
  ~Plan1d();
  Plan1d(Plan1d&&) noexcept;
  Plan1d& operator=(Plan1d&&) noexcept;
  Plan1d(const Plan1d&) = delete;
  Plan1d& operator=(const Plan1d&) = delete;
};

// Multiplies `count` complex values by `factor` (normalization helper for
// backward transforms, which are unnormalized like FFTW's).
void scale(Complex* data, std::size_t count, double factor);

}  // namespace offt::fft
