#include "fft/factorize.hpp"

#include "util/check.hpp"

namespace offt::fft {

std::vector<Stage> factorize(std::size_t n,
                             const std::vector<std::size_t>& preference) {
  OFFT_CHECK(n >= 1);
  std::vector<Stage> stages;
  std::size_t rem = n;
  while (rem > 1) {
    std::size_t radix = 0;
    for (std::size_t pref : preference) {
      if (pref > 1 && rem % pref == 0) {
        radix = pref;
        break;
      }
    }
    if (radix == 0) {
      // Smallest prime factor by trial division.
      std::size_t f = 2;
      while (f * f <= rem && rem % f != 0) ++f;
      radix = (f * f > rem) ? rem : f;
    }
    rem /= radix;
    stages.push_back({radix, rem});
  }
  return stages;
}

std::size_t largest_prime_factor(std::size_t n) {
  std::size_t best = 1;
  for (std::size_t f = 2; f * f <= n; ++f) {
    while (n % f == 0) {
      best = f;
      n /= f;
    }
  }
  return n > 1 ? n : best;
}

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t next_smooth(std::size_t n) {
  if (n <= 1) return 1;
  for (std::size_t v = n;; ++v) {
    std::size_t r = v;
    for (std::size_t f : {std::size_t{2}, std::size_t{3}, std::size_t{5}})
      while (r % f == 0) r /= f;
    if (r == 1) return v;
  }
}

}  // namespace offt::fft
