// Measured FFT planning, mirroring FFTW's ESTIMATE / MEASURE / PATIENT
// flags (§4.1 of the paper tunes the FFTW-delegated code sections with
// FFTW_PATIENT before the ten pipeline parameters are searched).
//
// Estimate picks a decomposition heuristically; Measure times each
// candidate radix order once; Patient repeats the timings and explores a
// larger candidate set.  plan_best_1d() also reports how long planning
// took, which feeds the paper's Table 4 (auto-tuning time).
#pragma once

#include <memory>

#include "fft/plan1d.hpp"

namespace offt::fft {

enum class Planning { Estimate, Measure, Patient };

const char* to_string(Planning p);

// Returns the fastest plan for (n, dir) under the given planning rigor.
// Results are cached process-wide; `tuning_seconds`, when non-null,
// receives the wall time spent measuring for this call (0 on cache hit).
std::shared_ptr<const Plan1d> plan_best_1d(std::size_t n, Direction dir,
                                           Planning planning,
                                           double* tuning_seconds = nullptr);

// Drops all cached plans (used by tests and by benchmarks that want to
// re-measure planning cost from a cold start).
void clear_plan_cache();

}  // namespace offt::fft
