// Basic value types shared by the FFT substrate and everything above it.
#pragma once

#include <complex>
#include <cstddef>

#include "util/aligned.hpp"

namespace offt::fft {

// All transforms are double-precision complex-to-complex, matching the
// paper's assumption (§2.3).
using Complex = std::complex<double>;
using ComplexVector = util::AlignedVector<Complex>;

// Sign convention follows FFTW: Forward uses exp(-2*pi*i*jk/N), Backward
// uses exp(+2*pi*i*jk/N), and neither direction normalizes — a
// forward+backward round trip multiplies the data by N.
enum class Direction { Forward, Backward };

inline constexpr double direction_sign(Direction d) {
  return d == Direction::Forward ? -1.0 : 1.0;
}

inline constexpr Direction reverse(Direction d) {
  return d == Direction::Forward ? Direction::Backward : Direction::Forward;
}

}  // namespace offt::fft
