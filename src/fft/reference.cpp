#include "fft/reference.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/plan1d.hpp"
#include "util/check.hpp"

namespace offt::fft {

void dft_1d_naive(const Complex* in, Complex* out, std::size_t n,
                  Direction dir) {
  OFFT_CHECK(in != out);
  const double sign = direction_sign(dir);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double phase = sign * 2.0 * std::numbers::pi *
                           static_cast<double>((j * k) % n) /
                           static_cast<double>(n);
      acc += in[j] * Complex{std::cos(phase), std::sin(phase)};
    }
    out[k] = acc;
  }
}

void fft3d_serial(Complex* data, std::size_t nx, std::size_t ny,
                  std::size_t nz, Direction dir) {
  const Plan1d plan_z(nz, dir);
  const Plan1d plan_y(ny, dir);
  const Plan1d plan_x(nx, dir);

  // Along z: contiguous pencils.
  plan_z.execute_many_inplace(data, static_cast<std::ptrdiff_t>(nz),
                              nx * ny);

  // Along y: stride nz within each x-slab.
  for (std::size_t i = 0; i < nx; ++i) {
    Complex* slab = data + i * ny * nz;
    for (std::size_t k = 0; k < nz; ++k) {
      plan_y.execute_strided(slab + k, static_cast<std::ptrdiff_t>(nz),
                             slab + k, static_cast<std::ptrdiff_t>(nz));
    }
  }

  // Along x: stride ny*nz.
  const auto sx = static_cast<std::ptrdiff_t>(ny * nz);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t k = 0; k < nz; ++k) {
      Complex* pencil = data + j * nz + k;
      plan_x.execute_strided(pencil, sx, pencil, sx);
    }
  }
}

void dft3d_naive(const Complex* in, Complex* out, std::size_t nx,
                 std::size_t ny, std::size_t nz, Direction dir) {
  OFFT_CHECK(in != out);
  const std::size_t total = nx * ny * nz;
  std::vector<Complex> tmp(total);

  // Along z.
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      dft_1d_naive(in + (i * ny + j) * nz, tmp.data() + (i * ny + j) * nz, nz,
                   dir);

  // Along y (gather strided pencils).
  std::vector<Complex> pin(ny), pout(ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t k = 0; k < nz; ++k) {
      for (std::size_t j = 0; j < ny; ++j) pin[j] = tmp[(i * ny + j) * nz + k];
      dft_1d_naive(pin.data(), pout.data(), ny, dir);
      for (std::size_t j = 0; j < ny; ++j) tmp[(i * ny + j) * nz + k] = pout[j];
    }
  }

  // Along x.
  std::vector<Complex> qin(nx), qout(nx);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t k = 0; k < nz; ++k) {
      for (std::size_t i = 0; i < nx; ++i) qin[i] = tmp[(i * ny + j) * nz + k];
      dft_1d_naive(qin.data(), qout.data(), nx, dir);
      for (std::size_t i = 0; i < nx; ++i) out[(i * ny + j) * nz + k] = qout[i];
    }
  }
}

}  // namespace offt::fft
