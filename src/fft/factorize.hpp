// Integer factorization helpers for FFT planning.
#pragma once

#include <cstddef>
#include <vector>

namespace offt::fft {

// One decomposition stage: combine `radix` subtransforms of length `m`.
// The product radix*m of stage s equals m of stage s-1 (and n for s == 0).
struct Stage {
  std::size_t radix;
  std::size_t m;
};

// Decomposes n into stages, greedily taking radices in `preference` order
// while they divide the remainder, then the smallest remaining prime
// factors.  n must be >= 1.
std::vector<Stage> factorize(std::size_t n,
                             const std::vector<std::size_t>& preference);

// Largest prime factor of n (1 for n == 1).
std::size_t largest_prime_factor(std::size_t n);

bool is_pow2(std::size_t n);
std::size_t next_pow2(std::size_t n);

// Smallest integer >= n whose prime factors are all in {2, 3, 5}.
std::size_t next_smooth(std::size_t n);

}  // namespace offt::fft
