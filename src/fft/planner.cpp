#include "fft/planner.hpp"

#include <limits>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace offt::fft {

const char* to_string(Planning p) {
  switch (p) {
    case Planning::Estimate: return "estimate";
    case Planning::Measure: return "measure";
    case Planning::Patient: return "patient";
  }
  return "?";
}

namespace {

std::mutex g_cache_mutex;
std::map<std::tuple<std::size_t, int, int>, std::shared_ptr<const Plan1d>>
    g_cache;

std::vector<PlanOptions> candidate_options(Planning planning) {
  std::vector<PlanOptions> cands;
  cands.push_back({{4, 2, 3, 5}});
  if (planning == Planning::Estimate) return cands;
  cands.push_back({{2, 3, 5}});
  cands.push_back({{8, 4, 2, 3, 5}});
  if (planning == Planning::Patient) {
    // PATIENT explores the full radix-order neighbourhood, like
    // FFTW_PATIENT trying many codelet decompositions.
    cands.push_back({{4, 8, 2, 5, 3}});
    cands.push_back({{3, 5, 4, 2}});
    cands.push_back({{5, 3, 4, 2}});
    cands.push_back({{16, 8, 4, 2, 3, 5}});
    cands.push_back({{2, 4, 8, 3, 5}});
    cands.push_back({{8, 2, 4, 5, 3}});
    cands.push_back({{16, 4, 2, 3, 5}});
    cands.push_back({{4, 2, 5, 3}});
  }
  return cands;
}

// Times single transforms and a batched pencil workload (the shape the
// 3-D pipeline actually executes), like FFTW planning on real usage.
double time_plan(const Plan1d& plan, ComplexVector& buf, int reps,
                 std::size_t batch) {
  const std::size_t n = plan.size();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = util::thread_cpu_now();
    plan.execute_many_inplace(buf.data(), static_cast<std::ptrdiff_t>(n),
                              batch);
    best = std::min(best, util::thread_cpu_now() - t0);
  }
  return best;
}

}  // namespace

std::shared_ptr<const Plan1d> plan_best_1d(std::size_t n, Direction dir,
                                           Planning planning,
                                           double* tuning_seconds) {
  if (tuning_seconds) *tuning_seconds = 0.0;
  const auto key = std::make_tuple(n, static_cast<int>(dir),
                                   static_cast<int>(planning));
  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    const auto it = g_cache.find(key);
    if (it != g_cache.end()) return it->second;
  }

  const double t_start = util::wall_now();
  std::shared_ptr<const Plan1d> best;
  if (planning == Planning::Estimate || n <= 2) {
    best = std::make_shared<const Plan1d>(n, dir);
  } else {
    // Measure each candidate decomposition on random data and keep the
    // fastest.  Patient mode runs more repetitions to suppress noise.
    util::Rng rng(n * 1315423911ull + static_cast<std::uint64_t>(dir));
    const std::size_t batch = planning == Planning::Patient ? 64 : 16;
    ComplexVector buf(n * batch);
    for (auto& v : buf) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};

    const int reps = planning == Planning::Patient ? 25 : 3;
    double best_time = std::numeric_limits<double>::infinity();
    for (const PlanOptions& opts : candidate_options(planning)) {
      auto plan = std::make_shared<const Plan1d>(n, dir, opts);
      const double t = time_plan(*plan, buf, reps, batch);
      if (t < best_time) {
        best_time = t;
        best = std::move(plan);
      }
    }
  }
  if (tuning_seconds) *tuning_seconds = util::wall_now() - t_start;

  std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto [it, inserted] = g_cache.emplace(key, std::move(best));
  (void)inserted;  // A racing thread may have planned the same key; keep one.
  return it->second;
}

void clear_plan_cache() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  g_cache.clear();
}

}  // namespace offt::fft
