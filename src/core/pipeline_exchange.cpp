// The tiled-exchange engine implementing Algorithms 1-3 of the paper, in
// a direction-neutral form (see pipeline_detail.hpp), plus the FFTz /
// Transpose prologue and epilogue and the geometry builders.
#include <algorithm>
#include <cstring>
#include <vector>

#include "core/pipeline_detail.hpp"
#include "fft/transpose.hpp"
#include "util/check.hpp"

namespace offt::core::detail {

using fft::Complex;

Complex* tls_complex(int slot, std::size_t n) {
  thread_local std::unordered_map<int, fft::ComplexVector> buffers;
  fft::ComplexVector& buf = buffers[slot];
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

namespace {

// Fires `rounds` MPI_Test batches, evenly spaced over `total_work` step()
// calls, on every not-yet-done outstanding request (Algorithms 2-3: "call
// MPI_Test on the W previous/next tiles F times in total").  Test time is
// recorded in the breakdown and in *excluded so the caller can subtract
// it from the enclosing compute step.
struct TestHook {
  sim::Comm& comm;
  const std::vector<sim::Request*>& outstanding;
  long long rounds;
  long long total_work;
  StepBreakdown* bd;
  double* excluded;

  long long done_work = 0;
  long long fired = 0;

  void step() {
    ++done_work;
    if (rounds <= 0 || total_work <= 0 || outstanding.empty()) return;
    while (fired < rounds && done_work * rounds >= (fired + 1) * total_work) {
      ++fired;
      const double t0 = comm.now();
      for (sim::Request* r : outstanding)
        if (!r->done()) comm.test(*r);
      const double dt = comm.now() - t0;
      if (bd) bd->add(Step::Test, dt);
      if (excluded) *excluded += dt;
    }
  }
};

struct Engine {
  const ExchangeGeom& g;
  sim::Comm& comm;
  Complex* data;
  StepBreakdown* bd;

  int p, rank;
  std::size_t my_s, my_t, nz, tiles;
  long long window;
  Complex* out;
  Complex* sendbuf;
  Complex* recvbuf;
  std::size_t send_slot_elems, recv_slot_elems;
  std::size_t send_slots, recv_slots;
  std::vector<sim::Request> reqs;
  std::vector<sim::Request*> outstanding;

  explicit Engine(const ExchangeGeom& geom, sim::Comm& c, Complex* d,
                  StepBreakdown* b)
      : g(geom), comm(c), data(d), bd(b) {
    p = comm.size();
    rank = comm.rank();
    my_s = g.s_dec->count(rank);
    my_t = g.t_dec->count(rank);
    nz = g.nz;
    const auto t = static_cast<std::size_t>(g.tile);
    tiles = (nz + t - 1) / t;
    window = g.window;

    const bool inplace = g.square ? (g.n_t == g.n_s && my_s == my_t)
                                  : (my_s * g.n_t == my_t * g.n_s);
    out = inplace ? data : tls_complex(0, my_t * nz * g.n_s);

    send_slot_elems = my_s * g.n_t * t;
    recv_slot_elems = my_t * g.n_s * t;
    send_slots = static_cast<std::size_t>(window) + 1;
    recv_slots = g.th_deferred_unpack ? tiles : send_slots;
    sendbuf = tls_complex(1, send_slots * send_slot_elems);
    recvbuf = tls_complex(2, recv_slots * recv_slot_elems);
    reqs.resize(tiles);
  }

  std::size_t pre_idx(std::size_t s, std::size_t z) const {
    return g.square ? (s * nz + z) * g.n_t : (z * my_s + s) * g.n_t;
  }
  std::size_t post_idx(std::size_t t, std::size_t z) const {
    return g.square ? (t * nz + z) * g.n_s : (z * my_t + t) * g.n_s;
  }

  std::size_t tile_z0(std::size_t i) const {
    return i * static_cast<std::size_t>(g.tile);
  }
  std::size_t tile_len(std::size_t i) const {
    return std::min<std::size_t>(static_cast<std::size_t>(g.tile),
                                 nz - tile_z0(i));
  }

  Complex* send_slot(std::size_t i) {
    return sendbuf + (i % send_slots) * send_slot_elems;
  }
  Complex* recv_slot(std::size_t i) {
    return recvbuf + (i % recv_slots) * recv_slot_elems;
  }

  // Requests [lo, hi] that are posted but not done.
  const std::vector<sim::Request*>& collect_outstanding(long long lo,
                                                        long long hi) {
    outstanding.clear();
    lo = std::max<long long>(lo, 0);
    hi = std::min<long long>(hi, static_cast<long long>(tiles) - 1);
    for (long long i = lo; i <= hi; ++i) {
      sim::Request& r = reqs[static_cast<std::size_t>(i)];
      if (r.valid() && !r.done()) outstanding.push_back(&r);
    }
    return outstanding;
  }

  // --- Algorithm 2: FFT along t, then Pack, sub-tiled (Ps x Pz) --------
  void fft_and_pack(std::size_t i) {
    const std::size_t z0 = tile_z0(i), zl = tile_len(i);
    Complex* slot = send_slot(i);
    const long long work =
        static_cast<long long>(my_s) * static_cast<long long>(zl);
    double fft_test = 0.0, pack_test = 0.0;
    TestHook hook_fft{comm, outstanding, g.f_fft1, work, bd, &fft_test};
    TestHook hook_pack{comm, outstanding, g.f_pack, work, bd, &pack_test};

    double fft_time = 0.0, pack_time = 0.0;
    const auto sub_s = static_cast<std::size_t>(g.sub_s);
    const auto sub_z = static_cast<std::size_t>(g.sub_z1);
    for (std::size_t sb = 0; sb < my_s; sb += sub_s) {
      const std::size_t se = std::min(my_s, sb + sub_s);
      for (std::size_t zb = 0; zb < zl; zb += sub_z) {
        const std::size_t ze = std::min(zl, zb + sub_z);

        double t0 = comm.now();
        for (std::size_t s = sb; s < se; ++s) {
          for (std::size_t z = zb; z < ze; ++z) {
            g.fft_t->execute_inplace(data + pre_idx(s, z0 + z));
            hook_fft.step();
          }
        }
        fft_time += comm.now() - t0;

        t0 = comm.now();
        for (std::size_t s = sb; s < se; ++s) {
          for (std::size_t z = zb; z < ze; ++z) {
            const Complex* row = data + pre_idx(s, z0 + z);
            for (int d = 0; d < p; ++d) {
              const std::size_t cnt = g.t_dec->count(d);
              Complex* blk = slot + my_s * zl * g.t_dec->offset(d);
              std::memcpy(blk + (z * my_s + s) * cnt,
                          row + g.t_dec->offset(d), cnt * sizeof(Complex));
            }
            hook_pack.step();
          }
        }
        pack_time += comm.now() - t0;
      }
    }
    if (bd) {
      bd->add(g.step_fft1, fft_time - fft_test);
      bd->add(Step::Pack, pack_time - pack_test);
    }
  }

  // --- Algorithm 3: Unpack, then FFT along s, sub-tiled (Ut x Uz) ------
  void unpack_and_fft(std::size_t i) {
    const std::size_t z0 = tile_z0(i), zl = tile_len(i);
    const Complex* slot = recv_slot(i);
    const long long work =
        static_cast<long long>(my_t) * static_cast<long long>(zl);
    double unpack_test = 0.0, fft_test = 0.0;
    TestHook hook_unpack{comm, outstanding, g.f_unpack, work, bd,
                         &unpack_test};
    TestHook hook_fft{comm, outstanding, g.f_fft2, work, bd, &fft_test};

    double unpack_time = 0.0, fft_time = 0.0;
    const auto sub_t = static_cast<std::size_t>(g.sub_t);
    const auto sub_z = static_cast<std::size_t>(g.sub_z2);
    for (std::size_t tb = 0; tb < my_t; tb += sub_t) {
      const std::size_t te = std::min(my_t, tb + sub_t);
      for (std::size_t zb = 0; zb < zl; zb += sub_z) {
        const std::size_t ze = std::min(zl, zb + sub_z);

        double t0 = comm.now();
        for (std::size_t t = tb; t < te; ++t) {
          for (std::size_t z = zb; z < ze; ++z) {
            Complex* row = out + post_idx(t, z0 + z);
            for (int src = 0; src < p; ++src) {
              const std::size_t cnt = g.s_dec->count(src);
              const std::size_t off = g.s_dec->offset(src);
              const Complex* blk = slot + zl * my_t * off;
              for (std::size_t si = 0; si < cnt; ++si)
                row[off + si] = blk[(z * cnt + si) * my_t + t];
            }
            hook_unpack.step();
          }
        }
        unpack_time += comm.now() - t0;

        t0 = comm.now();
        for (std::size_t t = tb; t < te; ++t) {
          for (std::size_t z = zb; z < ze; ++z) {
            g.fft_s->execute_inplace(out + post_idx(t, z0 + z));
            hook_fft.step();
          }
        }
        fft_time += comm.now() - t0;
      }
    }
    if (bd) {
      bd->add(Step::Unpack, unpack_time - unpack_test);
      bd->add(g.step_fft2, fft_time - fft_test);
    }
  }

  void post_alltoall(std::size_t i) {
    const std::size_t zl = tile_len(i);
    std::vector<std::size_t> sbytes(p), sdispl(p), rbytes(p), rdispl(p);
    for (int d = 0; d < p; ++d) {
      sbytes[d] = my_s * zl * g.t_dec->count(d) * sizeof(Complex);
      sdispl[d] = my_s * zl * g.t_dec->offset(d) * sizeof(Complex);
      rbytes[d] = my_t * zl * g.s_dec->count(d) * sizeof(Complex);
      rdispl[d] = my_t * zl * g.s_dec->offset(d) * sizeof(Complex);
    }
    const double t0 = comm.now();
    reqs[i] = comm.ialltoallv(send_slot(i), sbytes.data(), sdispl.data(),
                              recv_slot(i), rbytes.data(), rdispl.data());
    if (bd) bd->add(Step::Ialltoall, comm.now() - t0);
  }

  void wait_tile(std::size_t i) {
    const double t0 = comm.now();
    comm.wait(reqs[i]);
    if (bd) bd->add(Step::Wait, comm.now() - t0);
  }

  void copy_out_if_needed() {
    if (out == data) return;
    // Non-in-place path (ragged decompositions): move the result into the
    // caller's slab.  Accounted as Unpack — it is the tail of the data
    // movement the in-place path avoids.
    const double t0 = comm.now();
    std::memcpy(data, out, my_t * nz * g.n_s * sizeof(Complex));
    if (bd) bd->add(Step::Unpack, comm.now() - t0);
  }

  void run() {
    const auto k = static_cast<long long>(tiles);
    const long long W = window;
    if (g.th_deferred_unpack) {
      // TH (§5.1): overlap only FFT+Pack with the all-to-alls; run every
      // Unpack+FFT after all communication has been waited for.
      for (long long i = 0; i < k; ++i) {
        collect_outstanding(i - W, i - 1);
        fft_and_pack(static_cast<std::size_t>(i));
        if (W > 0 && i >= W) wait_tile(static_cast<std::size_t>(i - W));
        post_alltoall(static_cast<std::size_t>(i));
        if (W == 0) wait_tile(static_cast<std::size_t>(i));
      }
      for (long long i = std::max<long long>(0, k - W); i < k; ++i)
        wait_tile(static_cast<std::size_t>(i));
      outstanding.clear();
      for (long long i = 0; i < k; ++i)
        unpack_and_fft(static_cast<std::size_t>(i));
    } else if (W == 0) {
      // NEW-0 / FFTW-like: blocking exchange per tile (Fig. 8's "-0").
      outstanding.clear();
      for (long long i = 0; i < k; ++i) {
        fft_and_pack(static_cast<std::size_t>(i));
        post_alltoall(static_cast<std::size_t>(i));
        wait_tile(static_cast<std::size_t>(i));
        unpack_and_fft(static_cast<std::size_t>(i));
      }
    } else {
      // Algorithm 1 proper.
      for (long long i = 0; i < k + W; ++i) {
        if (i < k) {
          collect_outstanding(i - W, i - 1);
          fft_and_pack(static_cast<std::size_t>(i));
        }
        if (i >= W && i - W < k) wait_tile(static_cast<std::size_t>(i - W));
        if (i < k) post_alltoall(static_cast<std::size_t>(i));
        if (i >= W && i - W < k) {
          collect_outstanding(i - W + 1, i);
          unpack_and_fft(static_cast<std::size_t>(i - W));
        }
      }
    }
    copy_out_if_needed();
  }
};

}  // namespace

void run_tiled_exchange(const ExchangeGeom& g, sim::Comm& comm,
                        Complex* data, StepBreakdown* bd) {
  Engine engine(g, comm, data, bd);
  engine.run();
}

ExchangeGeom make_geom(const Plan3d::Impl& impl) {
  const Params& prm = impl.params;
  ExchangeGeom g;
  g.nz = impl.dims.nz;
  g.square = impl.square;
  g.tile = prm.T;
  g.window = prm.W;

  const bool forward = impl.options.direction == fft::Direction::Forward;
  if (forward) {
    g.n_t = impl.dims.ny;
    g.n_s = impl.dims.nx;
    g.s_dec = &impl.xdec;
    g.t_dec = &impl.ydec;
    g.fft_t = impl.plan_y.get();
    g.fft_s = impl.plan_x.get();
    g.sub_s = prm.Px;
    g.sub_z1 = prm.Pz;
    g.sub_t = prm.Uy;
    g.sub_z2 = prm.Uz;
    g.f_fft1 = prm.Fy;
    g.f_pack = prm.Fp;
    g.f_unpack = prm.Fu;
    g.f_fft2 = prm.Fx;
    g.step_fft1 = Step::FFTy;
    g.step_fft2 = Step::FFTx;
  } else {
    // Mirror: FFTx before the exchange, FFTy after.
    g.n_t = impl.dims.nx;
    g.n_s = impl.dims.ny;
    g.s_dec = &impl.ydec;
    g.t_dec = &impl.xdec;
    g.fft_t = impl.plan_x.get();
    g.fft_s = impl.plan_y.get();
    g.sub_s = prm.Uy;
    g.sub_z1 = prm.Uz;
    g.sub_t = prm.Px;
    g.sub_z2 = prm.Pz;
    g.f_fft1 = prm.Fx;
    g.f_pack = prm.Fp;
    g.f_unpack = prm.Fu;
    g.f_fft2 = prm.Fy;
    g.step_fft1 = Step::FFTx;
    g.step_fft2 = Step::FFTy;
  }

  const Method m = impl.options.method;
  if (m == Method::FftwLike) {
    // One blocking exchange over the whole slab, no loop tiling, no tests.
    g.tile = static_cast<long long>(impl.dims.nz);
    g.window = 0;
    g.sub_s = static_cast<long long>(g.s_dec->count(0) + 1);
    g.sub_z1 = g.tile;
    g.sub_t = static_cast<long long>(g.t_dec->count(0) + 1);
    g.sub_z2 = g.tile;
    g.f_fft1 = g.f_pack = g.f_unpack = g.f_fft2 = 0;
  } else if (m == Method::New0) {
    g.window = 0;
    g.f_fft1 = g.f_pack = g.f_unpack = g.f_fft2 = 0;
  } else if (m == Method::Th || m == Method::Th0) {
    // TH: no loop tiling, a single test-frequency knob (Fy), deferred
    // Unpack+FFTx.
    g.th_deferred_unpack = true;
    g.sub_s = static_cast<long long>(g.s_dec->count(0) + 1);
    g.sub_z1 = g.tile;
    g.sub_t = static_cast<long long>(g.t_dec->count(0) + 1);
    g.sub_z2 = g.tile;
    g.f_fft1 = prm.Fy;
    g.f_pack = prm.Fy;
    g.f_unpack = g.f_fft2 = 0;
    if (m == Method::Th0) {
      g.window = 0;
      g.f_fft1 = g.f_pack = 0;
    }
  }
  return g;
}

void run_fftz(const Plan3d::Impl& impl, Complex* data, int rank) {
  const std::size_t my_x = impl.xdec.count(rank);
  const Dims& d = impl.dims;
  impl.plan_z->execute_many_inplace(data, static_cast<std::ptrdiff_t>(d.nz),
                                    my_x * d.ny);
}

namespace {

bool uses_blocked_transpose(const Plan3d::Impl& impl) {
  const Method m = impl.options.method;
  return m != Method::Th && m != Method::Th0;
}

}  // namespace

void run_forward_transpose(const Plan3d::Impl& impl, Complex* data,
                           int rank) {
  const std::size_t my_x = impl.xdec.count(rank);
  const Dims& d = impl.dims;
  const std::size_t elems = my_x * d.ny * d.nz;
  Complex* tmp = tls_complex(3, elems);
  if (impl.square) {
    fft::permute_xyz_to_xzy(data, my_x, d.ny, d.nz, tmp,
                            uses_blocked_transpose(impl));
  } else {
    fft::permute_xyz_to_zxy(data, my_x, d.ny, d.nz, tmp,
                            uses_blocked_transpose(impl));
  }
  std::memcpy(data, tmp, elems * sizeof(Complex));
}

void run_inverse_transpose(const Plan3d::Impl& impl, Complex* data,
                           int rank) {
  const std::size_t my_x = impl.xdec.count(rank);
  const Dims& d = impl.dims;
  const std::size_t elems = my_x * d.ny * d.nz;
  Complex* tmp = tls_complex(3, elems);
  if (impl.square) {
    // x-z-y -> x-y-z is another per-x 2-D transpose (swap the two inner
    // dims back).
    fft::permute_xyz_to_xzy(data, my_x, d.nz, d.ny, tmp,
                            uses_blocked_transpose(impl));
  } else {
    fft::permute_zxy_to_xyz(data, my_x, d.ny, d.nz, tmp,
                            uses_blocked_transpose(impl));
  }
  std::memcpy(data, tmp, elems * sizeof(Complex));
}

}  // namespace offt::core::detail
