#include "core/pencil3d.hpp"

#include <cstring>

#include "core/pipeline_detail.hpp"
#include "util/check.hpp"

namespace offt::core {

using fft::Complex;

Pencil3d::Pencil3d(Dims dims, int rows, int cols, fft::Direction direction,
                   fft::Planning planning)
    : dims_(dims), rows_(rows), cols_(cols), direction_(direction) {
  OFFT_CHECK_MSG(rows >= 1 && cols >= 1, "process grid must be positive");
  OFFT_CHECK_MSG(dims.nx >= static_cast<std::size_t>(rows) &&
                     dims.ny >= static_cast<std::size_t>(rows) &&
                     dims.ny >= static_cast<std::size_t>(cols) &&
                     dims.nz >= static_cast<std::size_t>(cols),
                 "pencil decomposition needs Nx >= rows, Ny >= rows/cols, "
                 "Nz >= cols");
  OFFT_CHECK_MSG(direction == fft::Direction::Forward,
                 "Pencil3d currently implements the forward transform");
  xdec_ = decompose(dims.nx, rows);
  ydec_in_ = decompose(dims.ny, cols);
  zdec_ = decompose(dims.nz, cols);
  ydec_out_ = decompose(dims.ny, rows);
  plan_z_ = fft::plan_best_1d(dims.nz, direction, planning);
  plan_y_ = fft::plan_best_1d(dims.ny, direction, planning);
  plan_x_ = fft::plan_best_1d(dims.nx, direction, planning);
}

std::size_t Pencil3d::local_elements(int rank) const {
  const int r = row_of(rank), c = col_of(rank);
  const std::size_t in = xdec_.count(r) * ydec_in_.count(c) * dims_.nz;
  const std::size_t mid = xdec_.count(r) * dims_.ny * zdec_.count(c);
  const std::size_t out = ydec_out_.count(r) * zdec_.count(c) * dims_.nx;
  return std::max({in, mid, out});
}

std::size_t Pencil3d::input_index(int rank, std::size_t i, std::size_t j,
                                  std::size_t k) const {
  const int r = row_of(rank), c = col_of(rank);
  const std::size_t il = i - xdec_.offset(r);
  const std::size_t jl = j - ydec_in_.offset(c);
  return (il * ydec_in_.count(c) + jl) * dims_.nz + k;
}

std::size_t Pencil3d::output_index(int rank, std::size_t i, std::size_t j,
                                   std::size_t k) const {
  const int r = row_of(rank), c = col_of(rank);
  const std::size_t jl = j - ydec_out_.offset(r);
  const std::size_t kl = k - zdec_.offset(c);
  return (jl * zdec_.count(c) + kl) * dims_.nx + i;
}

namespace {

int owner_in(const Decomp& d, std::size_t index) {
  for (std::size_t r = 0; r < d.counts.size(); ++r)
    if (index < d.offsets[r] + d.counts[r]) return static_cast<int>(r);
  OFFT_CHECK_MSG(false, "index outside decomposition");
  return -1;
}

}  // namespace

int Pencil3d::input_owner(std::size_t i, std::size_t j) const {
  return owner_in(xdec_, i) * cols_ + owner_in(ydec_in_, j);
}

int Pencil3d::output_owner(std::size_t j, std::size_t k) const {
  return owner_in(ydec_out_, j) * cols_ + owner_in(zdec_, k);
}

void Pencil3d::execute(sim::Comm& comm, Complex* data) const {
  OFFT_CHECK_MSG(comm.size() == nranks(),
                 "plan was built for a different cluster size");
  const int rank = comm.rank();
  const int row = row_of(rank), col = col_of(rank);
  const std::size_t xc = xdec_.count(row);
  const std::size_t yc_in = ydec_in_.count(col);
  const std::size_t zc = zdec_.count(col);
  const std::size_t yc_out = ydec_out_.count(row);
  const Dims& d = dims_;

  std::vector<int> row_group(static_cast<std::size_t>(cols_));
  for (int c = 0; c < cols_; ++c) row_group[static_cast<std::size_t>(c)] =
      row * cols_ + c;
  std::vector<int> col_group(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) col_group[static_cast<std::size_t>(r)] =
      r * cols_ + col;

  // ---- FFTz on the input pencils (z contiguous) -----------------------
  plan_z_->execute_many_inplace(data, static_cast<std::ptrdiff_t>(d.nz),
                                xc * yc_in);

  // ---- Exchange 1 (row group): z <-> y --------------------------------
  // Send to column-member c': my (x, y, z in Z_{c'}) block, packed as
  // ((x*yc_in + y)*Z_{c'} + z'); receive the same shape from everyone and
  // unpack to x-z-y (y contiguous).
  {
    std::vector<std::size_t> sbytes(cols_), sdispl(cols_), rbytes(cols_),
        rdispl(cols_);
    std::size_t soff = 0, roff = 0;
    for (int c = 0; c < cols_; ++c) {
      sbytes[c] = xc * yc_in * zdec_.count(c) * sizeof(Complex);
      sdispl[c] = soff;
      soff += sbytes[c];
      rbytes[c] = xc * ydec_in_.count(c) * zc * sizeof(Complex);
      rdispl[c] = roff;
      roff += rbytes[c];
    }
    Complex* sendbuf = detail::tls_complex(10, soff / sizeof(Complex));
    Complex* recvbuf = detail::tls_complex(11, roff / sizeof(Complex));

    for (int c = 0; c < cols_; ++c) {
      Complex* blk = sendbuf + sdispl[c] / sizeof(Complex);
      const std::size_t z0 = zdec_.offset(c), zl = zdec_.count(c);
      for (std::size_t x = 0; x < xc; ++x)
        for (std::size_t y = 0; y < yc_in; ++y)
          std::memcpy(blk + (x * yc_in + y) * zl,
                      data + (x * yc_in + y) * d.nz + z0,
                      zl * sizeof(Complex));
    }

    sim::Request req = comm.ialltoallv_group(
        row_group, sendbuf, sbytes.data(), sdispl.data(), recvbuf,
        rbytes.data(), rdispl.data());
    comm.wait(req);

    // Unpack into x-z-y: data[(x*zc + z)*Ny + y].
    for (int c = 0; c < cols_; ++c) {
      const Complex* blk = recvbuf + rdispl[c] / sizeof(Complex);
      const std::size_t y0 = ydec_in_.offset(c), yl = ydec_in_.count(c);
      for (std::size_t x = 0; x < xc; ++x)
        for (std::size_t y = 0; y < yl; ++y)
          for (std::size_t z = 0; z < zc; ++z)
            data[(x * zc + z) * d.ny + (y0 + y)] =
                blk[(x * yl + y) * zc + z];
    }
  }

  // ---- FFTy on the mid pencils (y contiguous) --------------------------
  plan_y_->execute_many_inplace(data, static_cast<std::ptrdiff_t>(d.ny),
                                xc * zc);

  // ---- Exchange 2 (column group): x <-> y ------------------------------
  // Send to row-member r': my (x, z, y in Y'_{r'}) block, packed as
  // ((y'*zc + z)*xc + x); receive from everyone and unpack to y-z-x
  // (x contiguous).
  {
    std::vector<std::size_t> sbytes(rows_), sdispl(rows_), rbytes(rows_),
        rdispl(rows_);
    std::size_t soff = 0, roff = 0;
    for (int r = 0; r < rows_; ++r) {
      sbytes[r] = xc * zc * ydec_out_.count(r) * sizeof(Complex);
      sdispl[r] = soff;
      soff += sbytes[r];
      rbytes[r] = xdec_.count(r) * zc * yc_out * sizeof(Complex);
      rdispl[r] = roff;
      roff += rbytes[r];
    }
    Complex* sendbuf = detail::tls_complex(12, soff / sizeof(Complex));
    Complex* recvbuf = detail::tls_complex(13, roff / sizeof(Complex));

    for (int r = 0; r < rows_; ++r) {
      Complex* blk = sendbuf + sdispl[r] / sizeof(Complex);
      const std::size_t y0 = ydec_out_.offset(r), yl = ydec_out_.count(r);
      for (std::size_t y = 0; y < yl; ++y)
        for (std::size_t z = 0; z < zc; ++z)
          for (std::size_t x = 0; x < xc; ++x)
            blk[(y * zc + z) * xc + x] =
                data[(x * zc + z) * d.ny + (y0 + y)];
    }

    sim::Request req = comm.ialltoallv_group(
        col_group, sendbuf, sbytes.data(), sdispl.data(), recvbuf,
        rbytes.data(), rdispl.data());
    comm.wait(req);

    // Unpack into y-z-x: data[(y*zc + z)*Nx + x].
    for (int r = 0; r < rows_; ++r) {
      const Complex* blk = recvbuf + rdispl[r] / sizeof(Complex);
      const std::size_t x0 = xdec_.offset(r), xl = xdec_.count(r);
      for (std::size_t y = 0; y < yc_out; ++y)
        for (std::size_t z = 0; z < zc; ++z)
          std::memcpy(data + (y * zc + z) * d.nx + x0,
                      blk + (y * zc + z) * xl, xl * sizeof(Complex));
    }
  }

  // ---- FFTx on the output pencils (x contiguous) ------------------------
  plan_x_->execute_many_inplace(data, static_cast<std::ptrdiff_t>(d.nx),
                                yc_out * zc);
}

}  // namespace offt::core
