// Internal machinery shared by the pipeline translation units.  Not part
// of the public API.
#pragma once

#include <unordered_map>

#include "core/plan3d.hpp"

namespace offt::core {

struct Plan3d::Impl {
  Dims dims;
  int nranks = 0;
  Plan3dOptions options;
  Params params;  // resolved
  Decomp xdec, ydec;
  bool square = false;  // Nx == Ny fast transpose active
  double planning_seconds = 0.0;
  std::shared_ptr<const fft::Plan1d> plan_x, plan_y, plan_z;
};

namespace detail {

// Thread-local scratch (per simulated rank: each rank is a thread).
fft::Complex* tls_complex(int slot, std::size_t n);

// ---------------------------------------------------------------------
// The tiled-exchange engine: the middle of Algorithm 1 (everything
// between Transpose and the end), direction-neutral.
//
// Input:  my share of the s dimension, all of t:  pencils along t are
//         contiguous; layout (z, s, t), or (s, z, t) in square mode.
// Output: my share of the t dimension, all of s:  pencils along s are
//         contiguous; layout (z, t, s), or (t, z, s) in square mode.
//
// The forward transform instantiates s = x, t = y (FFTy before the
// exchange, FFTx after); the backward transform instantiates s = y, t = x.
// ---------------------------------------------------------------------
struct ExchangeGeom {
  std::size_t nz = 0;
  std::size_t n_t = 0;  // full length of pre-exchange (t) pencils
  std::size_t n_s = 0;  // full length of post-exchange (s) pencils
  const Decomp* s_dec = nullptr;  // decomposition of s (mine BEFORE)
  const Decomp* t_dec = nullptr;  // decomposition of t (mine AFTER)
  bool square = false;
  const fft::Plan1d* fft_t = nullptr;  // length n_t
  const fft::Plan1d* fft_s = nullptr;  // length n_s

  // Pipeline parameters (already validated/clamped).
  long long tile = 1;       // T
  long long window = 0;     // W
  long long sub_s = 1;      // pre-exchange sub-tile extent along s (Px)
  long long sub_z1 = 1;     // ... along z (Pz)
  long long sub_t = 1;      // post-exchange sub-tile extent along t (Uy)
  long long sub_z2 = 1;     // ... along z (Uz)
  long long f_fft1 = 0;     // test rounds during the pre-exchange FFT (Fy)
  long long f_pack = 0;     // ... during Pack (Fp)
  long long f_unpack = 0;   // ... during Unpack (Fu)
  long long f_fft2 = 0;     // ... during the post-exchange FFT (Fx)

  Step step_fft1 = Step::FFTy;  // breakdown label of the pre-exchange FFT
  Step step_fft2 = Step::FFTx;

  // TH mode: Unpack+FFTx for all tiles run after every all-to-all has
  // completed (no overlap for the second half, §5.1's TH).
  bool th_deferred_unpack = false;
};

void run_tiled_exchange(const ExchangeGeom& g, sim::Comm& comm,
                        fft::Complex* data, StepBreakdown* bd);

// Builds the geometry for a plan (forward or backward orientation).
ExchangeGeom make_geom(const Plan3d::Impl& impl);

// Forward prologue / backward epilogue pieces (serial, per-rank; callers
// time them via comm.now()).  The transposes use the cache-blocked kernel
// for New/New0/FftwLike and the naive kernel for Th/Th0 (Fig. 8 shows TH
// paying for its simpler transpose).
void run_fftz(const Plan3d::Impl& impl, fft::Complex* data, int rank);
// x-y-z -> z-x-y (or x-z-y on the square fast path).
void run_forward_transpose(const Plan3d::Impl& impl, fft::Complex* data,
                           int rank);
// z-x-y (or x-z-y) -> x-y-z.
void run_inverse_transpose(const Plan3d::Impl& impl, fft::Complex* data,
                           int rank);

}  // namespace detail
}  // namespace offt::core
