#include "core/plan3d.hpp"

#include <cstring>

#include "core/pipeline_detail.hpp"
#include "util/check.hpp"

namespace offt::core {

const char* to_string(Method m) {
  switch (m) {
    case Method::New: return "NEW";
    case Method::New0: return "NEW-0";
    case Method::Th: return "TH";
    case Method::Th0: return "TH-0";
    case Method::FftwLike: return "FFTW";
  }
  return "?";
}

Method method_by_name(const std::string& name) {
  if (name == "new" || name == "NEW") return Method::New;
  if (name == "new0" || name == "NEW-0") return Method::New0;
  if (name == "th" || name == "TH") return Method::Th;
  if (name == "th0" || name == "TH-0") return Method::Th0;
  if (name == "fftw" || name == "FFTW") return Method::FftwLike;
  OFFT_CHECK_MSG(false, "unknown method '" << name
                                           << "' (new|new0|th|th0|fftw)");
  return Method::New;
}

Plan3d::~Plan3d() = default;
Plan3d::Plan3d(Plan3d&&) noexcept = default;
Plan3d& Plan3d::operator=(Plan3d&&) noexcept = default;

Plan3d::Plan3d(Dims dims, int nranks, Plan3dOptions options)
    : impl_(std::make_unique<Impl>()) {
  OFFT_CHECK_MSG(dims.nx >= 1 && dims.ny >= 1 && dims.nz >= 1,
                 "all three dimensions must be positive");
  OFFT_CHECK_MSG(nranks >= 1, "need at least one rank");
  OFFT_CHECK_MSG(dims.nx >= static_cast<std::size_t>(nranks) &&
                     dims.ny >= static_cast<std::size_t>(nranks),
                 "1-D decomposition needs Nx >= p and Ny >= p");

  Impl& im = *impl_;
  im.dims = dims;
  im.nranks = nranks;
  im.options = options;
  im.params = options.params.resolved(dims, nranks);
  im.xdec = decompose(dims.nx, nranks);
  im.ydec = decompose(dims.ny, nranks);

  // §3.5: the x-z-y fast transpose needs Nx == Ny and, for the in-place
  // tile/chunk identity, a uniform decomposition.  TH and the FFTW
  // baseline never use it.
  const bool method_allows_square = options.method == Method::New ||
                                    options.method == Method::New0;
  im.square = options.square_path == Plan3dOptions::SquarePath::Auto &&
              method_allows_square && dims.nx == dims.ny &&
              im.xdec.uniform() && im.ydec.uniform();

  double t = 0.0;
  im.plan_z = fft::plan_best_1d(dims.nz, options.direction, options.planning,
                                &t);
  im.planning_seconds += t;
  im.plan_y = fft::plan_best_1d(dims.ny, options.direction, options.planning,
                                &t);
  im.planning_seconds += t;
  im.plan_x = fft::plan_best_1d(dims.nx, options.direction, options.planning,
                                &t);
  im.planning_seconds += t;
}

const Dims& Plan3d::dims() const { return impl_->dims; }
int Plan3d::nranks() const { return impl_->nranks; }
Method Plan3d::method() const { return impl_->options.method; }
fft::Direction Plan3d::direction() const { return impl_->options.direction; }
const Params& Plan3d::params() const { return impl_->params; }
bool Plan3d::square_fast_path() const { return impl_->square; }
const Decomp& Plan3d::x_decomp() const { return impl_->xdec; }
const Decomp& Plan3d::y_decomp() const { return impl_->ydec; }
double Plan3d::planning_seconds() const { return impl_->planning_seconds; }

OutputLayout Plan3d::output_layout() const {
  return impl_->square ? OutputLayout::YZX : OutputLayout::ZYX;
}

std::size_t Plan3d::local_elements(int rank) const {
  const Impl& im = *impl_;
  const std::size_t in = im.xdec.count(rank) * im.dims.ny * im.dims.nz;
  const std::size_t out = im.ydec.count(rank) * im.dims.nz * im.dims.nx;
  return std::max(in, out);
}

void Plan3d::execute(sim::Comm& comm, fft::Complex* data,
                     StepBreakdown* bd) const {
  const Impl& im = *impl_;
  OFFT_CHECK_MSG(comm.size() == im.nranks,
                 "plan was built for a different cluster size");
  const int rank = comm.rank();
  if (im.options.direction == fft::Direction::Forward) {
    double t0 = comm.now();
    detail::run_fftz(im, data, rank);
    if (bd) bd->add(Step::FFTz, comm.now() - t0);
    t0 = comm.now();
    detail::run_forward_transpose(im, data, rank);
    if (bd) bd->add(Step::Transpose, comm.now() - t0);
    detail::run_tiled_exchange(detail::make_geom(im), comm, data, bd);
  } else {
    detail::run_tiled_exchange(detail::make_geom(im), comm, data, bd);
    double t0 = comm.now();
    detail::run_inverse_transpose(im, data, rank);
    if (bd) bd->add(Step::Transpose, comm.now() - t0);
    t0 = comm.now();
    detail::run_fftz(im, data, rank);
    if (bd) bd->add(Step::FFTz, comm.now() - t0);
  }
}

std::size_t Plan3d::input_elements(int rank) const {
  const Impl& im = *impl_;
  return im.options.direction == fft::Direction::Forward
             ? im.xdec.count(rank) * im.dims.ny * im.dims.nz
             : im.ydec.count(rank) * im.dims.nz * im.dims.nx;
}

void Plan3d::execute(sim::Comm& comm, const fft::Complex* in,
                     fft::Complex* out, StepBreakdown* bd) const {
  OFFT_CHECK_MSG(in != out, "out-of-place execute needs distinct buffers");
  std::memcpy(out, in, input_elements(comm.rank()) * sizeof(fft::Complex));
  execute(comm, out, bd);
}

void Plan3d::run_pretransform(fft::Complex* data, int rank) const {
  const Impl& im = *impl_;
  OFFT_CHECK_MSG(im.options.direction == fft::Direction::Forward,
                 "run_pretransform applies to forward plans only");
  detail::run_fftz(im, data, rank);
  detail::run_forward_transpose(im, data, rank);
}

void Plan3d::execute_tunable_section(sim::Comm& comm, fft::Complex* data,
                                     StepBreakdown* bd) const {
  const Impl& im = *impl_;
  OFFT_CHECK_MSG(comm.size() == im.nranks,
                 "plan was built for a different cluster size");
  detail::run_tiled_exchange(detail::make_geom(im), comm, data, bd);
}

}  // namespace offt::core
