#include "core/field.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace offt::core {

bool Decomp::uniform() const {
  for (const std::size_t c : counts)
    if (c != counts.front()) return false;
  return true;
}

Decomp decompose(std::size_t n, int nranks) {
  OFFT_CHECK(nranks >= 1);
  Decomp d;
  d.counts.resize(static_cast<std::size_t>(nranks));
  d.offsets.resize(static_cast<std::size_t>(nranks));
  const std::size_t base = n / static_cast<std::size_t>(nranks);
  const std::size_t extra = n % static_cast<std::size_t>(nranks);
  std::size_t off = 0;
  for (std::size_t r = 0; r < static_cast<std::size_t>(nranks); ++r) {
    d.counts[r] = base + (r < extra ? 1 : 0);
    d.offsets[r] = off;
    off += d.counts[r];
  }
  return d;
}

DistributedField::DistributedField(const Dims& dims, int nranks)
    : dims_(dims),
      nranks_(nranks),
      xdec_(decompose(dims.nx, nranks)),
      ydec_(decompose(dims.ny, nranks)) {
  std::size_t max_elems = 0;
  for (int r = 0; r < nranks; ++r) {
    const std::size_t in = xdec_.count(r) * dims.ny * dims.nz;
    const std::size_t out = ydec_.count(r) * dims.nz * dims.nx;
    max_elems = std::max({max_elems, in, out});
  }
  slab_elems_ = max_elems;
  slabs_.resize(static_cast<std::size_t>(nranks));
  for (auto& s : slabs_) s.assign(slab_elems_, fft::Complex{0.0, 0.0});
}

void DistributedField::fill_input(
    const std::function<fft::Complex(std::size_t, std::size_t, std::size_t)>&
        f) {
  for (int r = 0; r < nranks_; ++r) {
    fft::Complex* s = slab(r);
    const std::size_t x0 = xdec_.offset(r), xc = xdec_.count(r);
    for (std::size_t i = 0; i < xc; ++i)
      for (std::size_t j = 0; j < dims_.ny; ++j)
        for (std::size_t k = 0; k < dims_.nz; ++k)
          s[(i * dims_.ny + j) * dims_.nz + k] = f(x0 + i, j, k);
  }
}

void DistributedField::scatter_input(const fft::Complex* global) {
  fill_input([&](std::size_t i, std::size_t j, std::size_t k) {
    return global[(i * dims_.ny + j) * dims_.nz + k];
  });
}

namespace {

int owner_of(const Decomp& d, std::size_t index) {
  for (std::size_t r = 0; r < d.counts.size(); ++r)
    if (index < d.offsets[r] + d.counts[r]) return static_cast<int>(r);
  OFFT_CHECK_MSG(false, "index out of decomposition range");
  return -1;
}

}  // namespace

fft::Complex DistributedField::input_at(std::size_t i, std::size_t j,
                                        std::size_t k) const {
  const int r = owner_of(xdec_, i);
  const std::size_t il = i - xdec_.offset(r);
  return slab(r)[(il * dims_.ny + j) * dims_.nz + k];
}

fft::Complex DistributedField::output_at(std::size_t i, std::size_t j,
                                         std::size_t k,
                                         OutputLayout layout) const {
  const int r = owner_of(ydec_, j);
  const std::size_t jl = j - ydec_.offset(r);
  const std::size_t yc = ydec_.count(r);
  const std::size_t idx = layout == OutputLayout::ZYX
                              ? (k * yc + jl) * dims_.nx + i
                              : (jl * dims_.nz + k) * dims_.nx + i;
  return slab(r)[idx];
}

void DistributedField::gather_input(fft::Complex* global) const {
  for (std::size_t i = 0; i < dims_.nx; ++i)
    for (std::size_t j = 0; j < dims_.ny; ++j)
      for (std::size_t k = 0; k < dims_.nz; ++k)
        global[(i * dims_.ny + j) * dims_.nz + k] = input_at(i, j, k);
}

void DistributedField::gather_output(fft::Complex* global,
                                     OutputLayout layout) const {
  for (std::size_t i = 0; i < dims_.nx; ++i)
    for (std::size_t j = 0; j < dims_.ny; ++j)
      for (std::size_t k = 0; k < dims_.nz; ++k)
        global[(i * dims_.ny + j) * dims_.nz + k] =
            output_at(i, j, k, layout);
}

}  // namespace offt::core
