// Parallel 3-D FFT plans over the simulated cluster — the paper's
// contribution plus the two comparison methods of §5.1.
//
//   Method::New      — the paper's design (Algorithms 1-3): per-tile
//                      non-blocking all-to-all, all four compute steps
//                      overlapped with communication, manual progression
//                      via tuned MPI_Test frequencies, loop tiling for
//                      Pack/Unpack, and the Nx == Ny fast transpose.
//   Method::New0     — NEW with overlap disabled (W = 0, no tests); the
//                      blocking-per-tile variant of Fig. 8.
//   Method::Th       — Hoefler-style overlap: only FFTy+Pack overlap the
//                      all-to-all; Unpack and FFTx run after all
//                      communication; naive transpose; no loop tiling.
//   Method::Th0      — TH with overlap disabled.
//   Method::FftwLike — the FFTW baseline: one blocking all-to-all over the
//                      whole slab, no overlap, no loop tiling, optimized
//                      transpose.
//
// Data distribution follows the 1-D decomposition of §2.2: forward input
// is an x-slab in x-y-z layout (z contiguous); forward output is a y-slab,
// "transposed out", in z-y-x layout (x contiguous) — or y-z-x when the
// Nx == Ny fast path is active.  Transforms are in-place and unnormalized.
#pragma once

#include <memory>
#include <string>

#include "core/breakdown.hpp"
#include "core/field.hpp"
#include "core/params.hpp"
#include "fft/planner.hpp"
#include "sim/cluster.hpp"

namespace offt::core {

enum class Method { New, New0, Th, Th0, FftwLike };

const char* to_string(Method m);
Method method_by_name(const std::string& name);

struct Plan3dOptions {
  Method method = Method::New;
  fft::Direction direction = fft::Direction::Forward;
  // The ten tunable parameters; unset fields resolve to the §4.4
  // heuristic.  TH uses only T, W and Fy (its single test frequency).
  Params params;
  // Rigor of the FFTW-substrate planning for the 1-D kernels (§4.1).
  fft::Planning planning = fft::Planning::Estimate;
  // §3.5 fast transpose; Auto enables it for New/New0 on square uniform
  // decompositions.
  enum class SquarePath { Auto, Off } square_path = SquarePath::Auto;
};

class Plan3d {
 public:
  Plan3d(Dims dims, int nranks, Plan3dOptions options = {});
  ~Plan3d();
  Plan3d(Plan3d&&) noexcept;
  Plan3d& operator=(Plan3d&&) noexcept;

  const Dims& dims() const;
  int nranks() const;
  Method method() const;
  fft::Direction direction() const;
  const Params& params() const;  // fully resolved
  OutputLayout output_layout() const;
  bool square_fast_path() const;
  const Decomp& x_decomp() const;
  const Decomp& y_decomp() const;
  // Elements a rank's slab buffer must hold (max of input/output slab).
  std::size_t local_elements(int rank) const;
  // Wall time spent auto-tuning the 1-D kernels at construction.
  double planning_seconds() const;

  // Collective in-place transform of this rank's slab; call from every
  // rank inside Cluster::run.  Optionally accumulates the per-step
  // breakdown (Fig. 8 categories) for this rank.
  void execute(sim::Comm& comm, fft::Complex* data,
               StepBreakdown* breakdown = nullptr) const;

  // Out-of-place variant (§2.3: "our approach can be applied directly for
  // the out-of-place transform"): `in` is left untouched, `out` (sized
  // local_elements(rank)) receives the result.  The buffers must not
  // overlap.
  void execute(sim::Comm& comm, const fft::Complex* in, fft::Complex* out,
               StepBreakdown* breakdown = nullptr) const;

  // Elements of this rank's *input* slab (execute()'s out-of-place source
  // size); local_elements() covers input and output.
  std::size_t input_elements(int rank) const;

  // Runs only FFTz + Transpose, serially (no communication).  Leaves
  // `data` in the layout execute_tunable_section expects.
  void run_pretransform(fft::Complex* data, int rank) const;

  // The parameter-dependent section only (FFTy/Pack/A2A/Unpack/FFTx):
  // the auto-tuning objective, per §4.4's "skip FFTz and Transpose".
  void execute_tunable_section(sim::Comm& comm, fft::Complex* data,
                               StepBreakdown* breakdown = nullptr) const;

  struct Impl;
  const Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace offt::core
