// 2-D (pencil) domain decomposition 3-D FFT — the P3DFFT-style method the
// paper discusses in §2.2 and names as the extension target in §7.
//
// The process grid has `rows` x `cols` ranks; rank = row*cols + col.
// Forward data flow for rank (r, c):
//
//   input   x-range(r) x y-range(c) x all-z     layout x-y-z (z contig)
//   FFTz, then all-to-all within the ROW group  (z <-> y redistribution)
//   mid     x-range(r) x all-y x z-range(c)     layout x-z-y (y contig)
//   FFTy, then all-to-all within the COLUMN group (x <-> y redistribution)
//   output  y-range'(r) x z-range(c) x all-x    layout y-z-x (x contig)
//   FFTx
//
// where y-range(c) splits Ny over the columns and y-range'(r) splits Ny
// over the rows.  Unlike the 1-D decomposition this supports up to N^2
// ranks, at the cost of two all-to-all steps — exactly the trade-off of
// §2.2; `bench_ext_pencil_vs_slab` measures where the crossover falls.
//
// Exchanges are blocking (P3DFFT does not overlap, §6); extending the
// tiled-overlap engine to this decomposition is the paper's own future
// work and the engine's geometry struct was kept decomposition-agnostic
// for that purpose.
#pragma once

#include "core/field.hpp"
#include "core/params.hpp"
#include "fft/planner.hpp"
#include "sim/cluster.hpp"

namespace offt::core {

class Pencil3d {
 public:
  Pencil3d(Dims dims, int rows, int cols,
           fft::Direction direction = fft::Direction::Forward,
           fft::Planning planning = fft::Planning::Estimate);

  const Dims& dims() const { return dims_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nranks() const { return rows_ * cols_; }
  fft::Direction direction() const { return direction_; }

  int row_of(int rank) const { return rank / cols_; }
  int col_of(int rank) const { return rank % cols_; }

  // Decompositions: x over rows, input-y over columns, z over columns,
  // output-y over rows.
  const Decomp& x_decomp() const { return xdec_; }
  const Decomp& y_in_decomp() const { return ydec_in_; }
  const Decomp& z_decomp() const { return zdec_; }
  const Decomp& y_out_decomp() const { return ydec_out_; }

  // Elements a rank's buffer must hold (max over the three phases).
  std::size_t local_elements(int rank) const;

  // Collective in-place transform; call from every rank of a cluster of
  // exactly rows()*cols() ranks.  Forward only (the backward pencil
  // transform mirrors it and is not needed by the paper's evaluation).
  void execute(sim::Comm& comm, fft::Complex* data) const;

  // Test/bench helpers: global element of the input / output for `rank`.
  std::size_t input_index(int rank, std::size_t i, std::size_t j,
                          std::size_t k) const;
  std::size_t output_index(int rank, std::size_t i, std::size_t j,
                           std::size_t k) const;
  int input_owner(std::size_t i, std::size_t j) const;
  int output_owner(std::size_t j, std::size_t k) const;

 private:
  Dims dims_;
  int rows_, cols_;
  fft::Direction direction_;
  Decomp xdec_, ydec_in_, zdec_, ydec_out_;
  std::shared_ptr<const fft::Plan1d> plan_x_, plan_y_, plan_z_;
};

}  // namespace offt::core
