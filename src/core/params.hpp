// The ten tunable parameters of the overlapped 3-D FFT (paper Table 1).
#pragma once

#include <cstddef>
#include <string>

namespace offt::core {

struct Dims {
  std::size_t nx = 0, ny = 0, nz = 0;
  std::size_t total() const { return nx * ny * nz; }
};

// All values in elements (not bytes).  A default-constructed Params is
// fully "auto": resolved() replaces autos with the paper's §4.4 heuristic
// defaults and clamps everything into the valid range for (dims, p).
struct Params {
  long long T = 0;   // tile size along z (elements per communication tile)
  long long W = -1;  // window: concurrent tile all-to-alls (0 = blocking)
  long long Px = 0;  // Pack sub-tile extent along x
  long long Pz = 0;  // Pack sub-tile extent along z
  long long Uy = 0;  // Unpack sub-tile extent along y
  long long Uz = 0;  // Unpack sub-tile extent along z
  long long Fy = -1; // MPI_Test rounds during FFTy, per communication tile
  long long Fp = -1; // ... during Pack
  long long Fu = -1; // ... during Unpack
  long long Fx = -1; // ... during FFTx

  // §4.4 default point: T = Nz/16, W = 2, sub-tiles sized to fit a 256 KB
  // cache (8K complex elements), F* = p/2.
  static Params heuristic(const Dims& dims, int nranks,
                          std::size_t cache_bytes = 256 * 1024);

  // Fills autos from the heuristic and clamps every field into its valid
  // range (1 <= T <= Nz, Pz/Uz <= T, Px <= ceil(Nx/p), Uy <= ceil(Ny/p),
  // W >= 0, F* >= 0).
  Params resolved(const Dims& dims, int nranks) const;

  // Strict feasibility — the constraint the auto-tuner penalizes
  // (§4.4 technique 1).  Requires every field to be explicitly set.
  bool feasible(const Dims& dims, int nranks) const;

  std::string to_string() const;

  bool operator==(const Params&) const = default;
};

}  // namespace offt::core
