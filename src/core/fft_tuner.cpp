#include "core/fft_tuner.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace offt::core {

namespace {

std::vector<long long> test_frequency_values(int nranks) {
  // Log-scale reduction of [1, 8p] (capped below at 64): the paper's
  // tuned F* values track the rank count because MPI_Ialltoall needs more
  // rounds of point-to-point progression as p grows (§4.4), topping out
  // at 2048 for p = 256 — exactly 8p.  0 (never poll) is excluded: it
  // disables manual progression entirely, which no overlap configuration
  // wants — the NEW-0/TH-0 variants set it programmatically instead.
  const long long hi = std::max<long long>(64, 8LL * nranks);
  return tune::log_scale_values(1, hi);
}

std::vector<long long> window_values() {
  // §4.4: no log-scale reduction for W — there are few sensible values.
  return {1, 2, 3, 4, 5, 6, 7, 8};
}

tune::Config step_vertex(const tune::SearchSpace& space,
                         const tune::Config& base, std::size_t dim) {
  const auto& vals = space.param(dim).values;
  const auto idx =
      static_cast<std::size_t>(space.nearest_index(dim, base[dim]));
  std::size_t j = idx;
  if (idx + 1 < vals.size()) {
    j = idx + 1;
  } else if (idx > 0) {
    j = idx - 1;
  }
  tune::Config v = base;
  v[dim] = vals[j];
  return v;
}

std::vector<tune::Config> build_initial_simplex(
    const tune::SearchSpace& space, const tune::Config& default_point) {
  std::vector<tune::Config> simplex;
  simplex.push_back(default_point);
  for (std::size_t d = 0; d < space.dims(); ++d)
    simplex.push_back(step_vertex(space, default_point, d));
  return simplex;
}

}  // namespace

Params FftTuneSpace::to_params(const tune::Config& config) const {
  Params p;
  if (method == Method::Th || method == Method::Th0) {
    OFFT_CHECK(config.size() == 3);
    p.T = config[0];
    p.W = config[1];
    p.Fy = config[2];
    p.Px = p.Pz = p.Uy = p.Uz = 1;
    p.Fp = p.Fu = p.Fx = 0;
  } else {
    OFFT_CHECK(config.size() == 10);
    p.T = config[0];
    p.W = config[1];
    p.Px = config[2];
    p.Pz = config[3];
    p.Uy = config[4];
    p.Uz = config[5];
    p.Fy = config[6];
    p.Fp = config[7];
    p.Fu = config[8];
    p.Fx = config[9];
  }
  return p;
}

tune::Config FftTuneSpace::to_config(const Params& p) const {
  if (method == Method::Th || method == Method::Th0)
    return {p.T, p.W, p.Fy};
  return {p.T, p.W, p.Px, p.Pz, p.Uy, p.Uz, p.Fy, p.Fp, p.Fu, p.Fx};
}

FftTuneSpace make_tune_space(const Dims& dims, int nranks, Method method) {
  FftTuneSpace ts;
  ts.method = method;
  ts.dims = dims;
  ts.nranks = nranks;

  const auto nz = static_cast<long long>(dims.nz);
  const long long max_px = static_cast<long long>(
      (dims.nx + static_cast<std::size_t>(nranks) - 1) /
      static_cast<std::size_t>(nranks));
  const long long max_uy = static_cast<long long>(
      (dims.ny + static_cast<std::size_t>(nranks) - 1) /
      static_cast<std::size_t>(nranks));

  if (method == Method::Th || method == Method::Th0) {
    ts.space.add_log_scale("T", 1, nz);
    ts.space.add("W", window_values());
    ts.space.add("F", test_frequency_values(nranks));
  } else {
    ts.space.add_log_scale("T", 1, nz);
    ts.space.add("W", window_values());
    ts.space.add_log_scale("Px", 1, max_px);
    ts.space.add_log_scale("Pz", 1, nz);
    ts.space.add_log_scale("Uy", 1, max_uy);
    ts.space.add_log_scale("Uz", 1, nz);
    ts.space.add("Fy", test_frequency_values(nranks));
    ts.space.add("Fp", test_frequency_values(nranks));
    ts.space.add("Fu", test_frequency_values(nranks));
    ts.space.add("Fx", test_frequency_values(nranks));
  }

  // The constraint closure converts through its own FftTuneSpace so it
  // stays valid however `ts` is copied or moved.
  const Method m = method;
  const Dims d = dims;
  const int p = nranks;
  ts.constraint = [m, d, p](const tune::Config& c) {
    FftTuneSpace conv;
    conv.method = m;
    return conv.to_params(c).feasible(d, p);
  };

  // §4.4 initial simplex: the heuristic default point, snapped into the
  // reduced space, plus one adjacent step per dimension.
  const Params heur = Params::heuristic(dims, nranks).resolved(dims, nranks);
  const tune::Config default_point =
      ts.space.snap(ts.space.to_point(ts.to_config(heur)));
  ts.initial_simplex = build_initial_simplex(ts.space, default_point);
  return ts;
}

namespace {

struct ObjectiveState {
  sim::Cluster* cluster;
  FftTuneSpace ts;
  FftTuneOptions opts;
  std::vector<fft::ComplexVector> pristine;
  std::vector<fft::ComplexVector> work;

  ObjectiveState(sim::Cluster& c, FftTuneSpace tune_space,
                 const FftTuneOptions& options)
      : cluster(&c), ts(std::move(tune_space)), opts(options) {
    OFFT_CHECK_MSG(cluster->size() == ts.nranks,
                   "cluster size does not match the tuning space");
    Plan3dOptions popts;
    popts.method = ts.method;
    popts.planning = opts.planning;
    const Plan3d probe(ts.dims, ts.nranks, popts);

    // Prepare the post-Transpose input once per rank; every evaluation
    // restores it with a memcpy instead of re-running FFTz + Transpose
    // (§4.4 technique 3).
    const int p = ts.nranks;
    pristine.resize(static_cast<std::size_t>(p));
    work.resize(static_cast<std::size_t>(p));
    util::Rng rng(0xf00d + static_cast<std::uint64_t>(p));
    for (int r = 0; r < p; ++r) {
      const std::size_t n = probe.local_elements(r);
      pristine[static_cast<std::size_t>(r)].resize(n);
      work[static_cast<std::size_t>(r)].resize(n);
      for (auto& v : pristine[static_cast<std::size_t>(r)])
        v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
      probe.run_pretransform(pristine[static_cast<std::size_t>(r)].data(), r);
    }
  }

  double evaluate(const tune::Config& config) {
    Plan3dOptions popts;
    popts.method = ts.method;
    popts.params = ts.to_params(config);
    popts.planning = opts.planning;
    const Plan3d plan(ts.dims, ts.nranks, popts);

    double best = tune::kInfeasible;
    for (int rep = 0; rep < std::max(1, opts.reps); ++rep) {
      double section = 0.0;
      cluster->run([&](sim::Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        std::memcpy(work[r].data(), pristine[r].data(),
                    pristine[r].size() * sizeof(fft::Complex));
        comm.barrier();
        const double t0 = comm.now();
        plan.execute_tunable_section(comm, work[r].data());
        const double dt = comm.now() - t0;
        const double makespan = comm.allreduce_max(dt);
        if (comm.rank() == 0) section = makespan;
      });
      best = std::min(best, section);
    }
    return best;
  }
};

}  // namespace

tune::Objective make_fft3d_objective(sim::Cluster& cluster,
                                     const FftTuneSpace& tune_space,
                                     const FftTuneOptions& options) {
  auto state = std::make_shared<ObjectiveState>(cluster, tune_space, options);
  return [state](const tune::Config& config) {
    return state->evaluate(config);
  };
}

FftTuneResult tune_fft3d(sim::Cluster& cluster, const Dims& dims,
                         Method method, const FftTuneOptions& options) {
  const int p = cluster.size();
  FftTuneSpace ts = make_tune_space(dims, p, method);

  FftTuneResult result;
  {
    // §4.1: tune the 1-D kernels (the FFTW-delegated sections) first and
    // record that cost separately (Table 4's FFTW column analogue).
    Plan3dOptions popts;
    popts.method = method;
    popts.planning = options.planning;
    const Plan3d probe(dims, p, popts);
    result.fft_planning_seconds = probe.planning_seconds();
  }

  const tune::Objective objective =
      make_fft3d_objective(cluster, ts, options);

  tune::TuneOptions topts;
  topts.strategy = options.strategy;
  topts.nm.max_evaluations = options.max_evaluations;
  topts.random_samples = options.random_samples;
  topts.seed = options.seed;
  if (options.use_paper_initial_simplex &&
      options.strategy == tune::Strategy::NelderMeadSearch)
    topts.initial_simplex = ts.initial_simplex;

  result.outcome = tune::tune(ts.space, objective, ts.constraint, topts);
  if (result.outcome.search.best.empty()) {
    result.best_params = Params::heuristic(dims, p).resolved(dims, p);
  } else {
    result.best_params =
        ts.to_params(result.outcome.search.best).resolved(dims, p);
  }
  result.best_seconds = result.outcome.search.best_value;
  return result;
}

}  // namespace offt::core
