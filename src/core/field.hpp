// Slab decomposition helpers and a convenience container for distributed
// 3-D fields.
//
// Forward-transform input: rank r owns the x-slab [x_offset(r),
// x_offset(r)+x_count(r)) in x-y-z layout (z contiguous).  Forward output
// (transposed out, like FFTW's MPI mode): rank r owns a y-slab in z-y-x
// layout (x contiguous) — or y-z-x for the Nx == Ny fast-transpose path.
#pragma once

#include <functional>
#include <vector>

#include "core/params.hpp"
#include "fft/types.hpp"

namespace offt::core {

enum class OutputLayout { ZYX, YZX };

// Balanced 1-D block decomposition of n over p parts: the first (n mod p)
// parts get one extra element.
struct Decomp {
  std::vector<std::size_t> counts;
  std::vector<std::size_t> offsets;

  std::size_t count(int r) const { return counts[static_cast<std::size_t>(r)]; }
  std::size_t offset(int r) const {
    return offsets[static_cast<std::size_t>(r)];
  }
  bool uniform() const;
};

Decomp decompose(std::size_t n, int nranks);

// Convenience holder for one slab per rank, used by tests, examples and
// the benchmark harness.  Slabs are sized to fit both the input x-slab and
// the output y-slab so in-place transforms work for non-divisible sizes
// too.
class DistributedField {
 public:
  DistributedField(const Dims& dims, int nranks);

  const Dims& dims() const { return dims_; }
  int nranks() const { return nranks_; }
  const Decomp& x_decomp() const { return xdec_; }
  const Decomp& y_decomp() const { return ydec_; }
  std::size_t slab_elements() const { return slab_elems_; }

  fft::Complex* slab(int rank) { return slabs_[static_cast<std::size_t>(rank)].data(); }
  const fft::Complex* slab(int rank) const {
    return slabs_[static_cast<std::size_t>(rank)].data();
  }

  // Fills the input slabs from f(i, j, k) in x-y-z x-slab layout.
  void fill_input(const std::function<fft::Complex(std::size_t, std::size_t,
                                                   std::size_t)>& f);
  // Scatters a full x-y-z row-major array into the input slabs.
  void scatter_input(const fft::Complex* global);

  // Element accessors by global index.
  fft::Complex input_at(std::size_t i, std::size_t j, std::size_t k) const;
  fft::Complex output_at(std::size_t i, std::size_t j, std::size_t k,
                         OutputLayout layout) const;

  // Gathers to a full x-y-z row-major array.
  void gather_input(fft::Complex* global) const;
  void gather_output(fft::Complex* global, OutputLayout layout) const;

 private:
  Dims dims_;
  int nranks_;
  Decomp xdec_, ydec_;
  std::size_t slab_elems_;
  std::vector<fft::ComplexVector> slabs_;
};

}  // namespace offt::core
