// Per-step virtual-time accounting in the nine categories of the paper's
// Fig. 8: FFTz, Transpose, FFTy, Pack, Unpack, FFTx, Ialltoall (posting),
// Wait, Test.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>

namespace offt::sim {
class Comm;
}

namespace offt::core {

enum class Step {
  FFTz,
  Transpose,
  FFTy,
  Pack,
  Unpack,
  FFTx,
  Ialltoall,
  Wait,
  Test,
};

inline constexpr std::size_t kStepCount = 9;
const char* step_name(Step s);

struct StepBreakdown {
  std::array<double, kStepCount> seconds{};

  void add(Step s, double dt) {
    seconds[static_cast<std::size_t>(s)] += dt;
  }
  double operator[](Step s) const {
    return seconds[static_cast<std::size_t>(s)];
  }
  double total() const;
  // FFTy + Pack + Unpack + FFTx: the computation the overlap can hide
  // behind communication (§5.2.1 calls it "overlappable").
  double overlappable_compute() const;

  StepBreakdown& operator+=(const StepBreakdown& o);
  StepBreakdown& operator*=(double f);

  // Element-wise mean across all ranks (collective call).
  StepBreakdown averaged(sim::Comm& comm) const;

  void print(std::ostream& os) const;
};

}  // namespace offt::core
