// Auto-tuning glue between the 3-D FFT plans and the tune substrate —
// the paper's §4: the ten-parameter search space with log-scale reduction,
// the feasibility constraint, the §4.4 initial simplex, and the objective
// that runs only the parameter-dependent section of the pipeline.
#pragma once

#include "core/plan3d.hpp"
#include "tune/tuner.hpp"

namespace offt::core {

// The reduced search space for a method (ten parameters for NEW, three —
// T, W, F — for TH, as in §5.1's "fair comparison" re-tuning).
struct FftTuneSpace {
  tune::SearchSpace space;
  tune::Constraint constraint;
  std::vector<tune::Config> initial_simplex;  // §4.4 default point + steps
  Method method = Method::New;
  Dims dims;
  int nranks = 0;

  Params to_params(const tune::Config& config) const;
  tune::Config to_config(const Params& params) const;
};

FftTuneSpace make_tune_space(const Dims& dims, int nranks, Method method);

struct FftTuneOptions {
  tune::Strategy strategy = tune::Strategy::NelderMeadSearch;
  int max_evaluations = 60;   // NM objective budget
  int random_samples = 200;   // for Strategy::RandomSearch
  std::uint64_t seed = 1;
  // Rigor for the 1-D kernel planning done before the parameter search
  // (§4.1 tunes the FFTW-delegated sections first).
  fft::Planning planning = fft::Planning::Measure;
  // Repetitions of the tunable section per evaluation; the minimum is
  // reported (suppresses compute-measurement noise).
  int reps = 1;
  bool use_paper_initial_simplex = true;
};

struct FftTuneResult {
  Params best_params;          // resolved best configuration
  double best_seconds = 0.0;   // virtual time of the tunable section
  tune::TuneOutcome outcome;   // search statistics + wall tuning time
  double fft_planning_seconds = 0.0;  // 1-D kernel planning time (§4.1)
};

// Auto-tunes `method` for `dims` on the given cluster.  The objective
// evaluates the tunable section (FFTy/Pack/A2A/Unpack/FFTx) on inputs
// prepared once with run_pretransform; FFTz and Transpose are never
// re-executed during the search (§4.4 technique 3).
FftTuneResult tune_fft3d(sim::Cluster& cluster, const Dims& dims,
                         Method method, const FftTuneOptions& options = {});

// Builds the objective alone (used by benches that drive the search
// differently, e.g. the Fig. 5 random-configuration CDF).
tune::Objective make_fft3d_objective(sim::Cluster& cluster,
                                     const FftTuneSpace& tune_space,
                                     const FftTuneOptions& options);

}  // namespace offt::core
