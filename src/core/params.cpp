#include "core/params.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace offt::core {

namespace {

long long ceil_div(std::size_t a, std::size_t b) {
  return static_cast<long long>((a + b - 1) / b);
}

long long clamp_ll(long long v, long long lo, long long hi) {
  return std::clamp(v, lo, hi);
}

}  // namespace

Params Params::heuristic(const Dims& dims, int nranks,
                         std::size_t cache_bytes) {
  OFFT_CHECK(nranks >= 1 && dims.total() > 0);
  Params p;
  const auto nz = static_cast<long long>(dims.nz);
  // Half the cache for a read/write sub-tile of 16-byte complex elements.
  const long long cache_elems =
      std::max<long long>(1, static_cast<long long>(cache_bytes) / 16 / 2);

  p.T = std::max<long long>(1, nz / 16);
  p.W = 2;
  p.Px = std::max<long long>(1, cache_elems / static_cast<long long>(dims.ny));
  p.Pz = std::max<long long>(
      1, cache_elems / static_cast<long long>(dims.ny) / p.Px);
  p.Uy = std::max<long long>(1, cache_elems / static_cast<long long>(dims.nx));
  p.Uz = std::max<long long>(
      1, cache_elems / static_cast<long long>(dims.nx) / p.Uy);
  p.Fy = p.Fp = p.Fu = p.Fx = std::max<long long>(1, nranks / 2);
  return p;
}

Params Params::resolved(const Dims& dims, int nranks) const {
  OFFT_CHECK(nranks >= 1 && dims.total() > 0);
  const Params h = heuristic(dims, nranks);
  Params r = *this;
  if (r.T <= 0) r.T = h.T;
  if (r.W < 0) r.W = h.W;
  if (r.Px <= 0) r.Px = h.Px;
  if (r.Pz <= 0) r.Pz = h.Pz;
  if (r.Uy <= 0) r.Uy = h.Uy;
  if (r.Uz <= 0) r.Uz = h.Uz;
  if (r.Fy < 0) r.Fy = h.Fy;
  if (r.Fp < 0) r.Fp = h.Fp;
  if (r.Fu < 0) r.Fu = h.Fu;
  if (r.Fx < 0) r.Fx = h.Fx;

  const auto nz = static_cast<long long>(dims.nz);
  const long long max_px = ceil_div(dims.nx, static_cast<std::size_t>(nranks));
  const long long max_uy = ceil_div(dims.ny, static_cast<std::size_t>(nranks));
  r.T = clamp_ll(r.T, 1, nz);
  r.W = std::max<long long>(0, r.W);
  r.Px = clamp_ll(r.Px, 1, max_px);
  r.Pz = clamp_ll(r.Pz, 1, r.T);
  r.Uy = clamp_ll(r.Uy, 1, max_uy);
  r.Uz = clamp_ll(r.Uz, 1, r.T);
  r.Fy = std::max<long long>(0, r.Fy);
  r.Fp = std::max<long long>(0, r.Fp);
  r.Fu = std::max<long long>(0, r.Fu);
  r.Fx = std::max<long long>(0, r.Fx);
  return r;
}

bool Params::feasible(const Dims& dims, int nranks) const {
  const auto nz = static_cast<long long>(dims.nz);
  const long long max_px = ceil_div(dims.nx, static_cast<std::size_t>(nranks));
  const long long max_uy = ceil_div(dims.ny, static_cast<std::size_t>(nranks));
  return T >= 1 && T <= nz && W >= 0 && Px >= 1 && Px <= max_px && Pz >= 1 &&
         Pz <= T && Uy >= 1 && Uy <= max_uy && Uz >= 1 && Uz <= T && Fy >= 0 &&
         Fp >= 0 && Fu >= 0 && Fx >= 0;
}

std::string Params::to_string() const {
  std::ostringstream os;
  os << "{T=" << T << " W=" << W << " Px=" << Px << " Pz=" << Pz
     << " Uy=" << Uy << " Uz=" << Uz << " Fy=" << Fy << " Fp=" << Fp
     << " Fu=" << Fu << " Fx=" << Fx << "}";
  return os.str();
}

}  // namespace offt::core
