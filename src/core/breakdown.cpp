#include "core/breakdown.hpp"

#include <iomanip>
#include <ostream>

#include "sim/cluster.hpp"

namespace offt::core {

const char* step_name(Step s) {
  switch (s) {
    case Step::FFTz: return "FFTz";
    case Step::Transpose: return "Transpose";
    case Step::FFTy: return "FFTy";
    case Step::Pack: return "Pack";
    case Step::Unpack: return "Unpack";
    case Step::FFTx: return "FFTx";
    case Step::Ialltoall: return "Ialltoall";
    case Step::Wait: return "Wait";
    case Step::Test: return "Test";
  }
  return "?";
}

double StepBreakdown::total() const {
  double t = 0.0;
  for (const double s : seconds) t += s;
  return t;
}

double StepBreakdown::overlappable_compute() const {
  return (*this)[Step::FFTy] + (*this)[Step::Pack] + (*this)[Step::Unpack] +
         (*this)[Step::FFTx];
}

StepBreakdown& StepBreakdown::operator+=(const StepBreakdown& o) {
  for (std::size_t i = 0; i < kStepCount; ++i) seconds[i] += o.seconds[i];
  return *this;
}

StepBreakdown& StepBreakdown::operator*=(double f) {
  for (double& s : seconds) s *= f;
  return *this;
}

StepBreakdown StepBreakdown::averaged(sim::Comm& comm) const {
  StepBreakdown avg;
  const double inv = 1.0 / static_cast<double>(comm.size());
  for (std::size_t i = 0; i < kStepCount; ++i)
    avg.seconds[i] = comm.allreduce_sum(seconds[i]) * inv;
  return avg;
}

void StepBreakdown::print(std::ostream& os) const {
  for (std::size_t i = 0; i < kStepCount; ++i) {
    os << "  " << std::left << std::setw(10)
       << step_name(static_cast<Step>(i)) << std::right << std::fixed
       << std::setprecision(6) << seconds[i] << " s\n";
  }
  os << "  " << std::left << std::setw(10) << "total" << std::right
     << std::fixed << std::setprecision(6) << total() << " s\n";
}

}  // namespace offt::core
