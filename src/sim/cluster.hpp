// Virtual-time cluster simulator with MPI-like message passing.
//
// Cluster::run(fn) executes fn(Comm&) once per simulated rank.  Each rank
// is carried by its own thread, but a baton scheduler lets exactly one
// execute at a time and always resumes the runnable rank with the
// smallest *virtual clock*.  A rank's clock advances by
//   - its measured compute time (CLOCK_THREAD_CPUTIME_ID) scaled by
//     NetworkModel::compute_scale,
//   - explicit Comm::advance() charges,
//   - message injection and test overheads, and
//   - jumps to message-completion times while blocked in wait().
//
// Because every operation on shared messaging state executes while its
// rank holds the global minimum clock, matching and all completion times
// are deterministic (up to compute-time measurement, which tests avoid by
// using Comm::advance()).
//
// Non-blocking semantics mirror MPI-3: isend/irecv/ialltoall(v) return a
// Request; test() is *manual progression* — a non-blocking collective's
// internal schedule only advances during the owner's test()/wait() calls,
// exactly the behaviour the paper's F* parameters are tuned around
// (§3.3).  wait() self-progresses eagerly, like a blocking MPI call.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace offt::sim {

namespace detail {
struct ClusterImpl;
struct RankCtx;
struct RequestState;
}  // namespace detail

// Thrown by Cluster::run when every unfinished rank is blocked on a
// message that can never complete.  what() lists each rank's state.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Handle to an in-flight non-blocking operation.  Default-constructed
// requests are "null" and complete trivially.  Handles are move-only.
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }
  bool done() const;

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::RequestState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

// Per-rank communication endpoint, passed to the rank function.  All
// methods must be called from the owning rank's thread.
class Comm {
 public:
  int rank() const;
  int size() const;
  const NetworkModel& network() const;

  // Current virtual time of this rank (includes the compute measured
  // since the last simulator call).
  Seconds now() const;

  // Charges `dt` virtual seconds of synthetic compute to this rank.
  // Tests and models use this instead of real work for determinism.
  void advance(Seconds dt);

  // --- point-to-point ------------------------------------------------
  // Buffers must stay untouched until the request completes, as in MPI.
  // Matching is exact on (source, destination, tag), FIFO per triple.
  Request isend(const void* buf, std::size_t bytes, int dst, int tag);
  Request irecv(void* buf, std::size_t bytes, int src, int tag);
  void send(const void* buf, std::size_t bytes, int dst, int tag);
  void recv(void* buf, std::size_t bytes, int src, int tag);

  // --- completion ----------------------------------------------------
  // Manual progression: harvests message completions with timestamps
  // <= now and, for collectives, posts the next internal round.  Charges
  // NetworkModel::test_overhead.  Returns true when the request is done.
  bool test(Request& req);
  // Blocks (in virtual time) until done, progressing eagerly.
  void wait(Request& req);
  void waitall(std::vector<Request>& reqs);

  // --- collectives ----------------------------------------------------
  // All ranks must call collectives in the same order.  ialltoall
  // exchanges `block_bytes` bytes with every rank: block d of sendbuf
  // goes to rank d; block s of recvbuf arrives from rank s.  The
  // schedule is LibNBC-style: p-1 pairwise rounds, one in flight, each
  // next round posted only from test()/wait().
  Request ialltoall(const void* sendbuf, void* recvbuf,
                    std::size_t block_bytes);
  Request ialltoallv(const void* sendbuf, const std::size_t* send_bytes,
                     const std::size_t* send_displs, void* recvbuf,
                     const std::size_t* recv_bytes,
                     const std::size_t* recv_displs);
  void alltoall(const void* sendbuf, void* recvbuf, std::size_t block_bytes);

  // Group (sub-communicator) variants: the exchange runs among `members`
  // only (the caller must be one of them), with blocks indexed by member
  // *position*, not global rank — the building block for 2-D (pencil)
  // decompositions, where row and column groups exchange independently.
  // Every member must call with the identical member list, and all ranks
  // of the cluster must issue the same global sequence of collective
  // calls (the usual MPI ordering rule, extended to groups).
  Request ialltoallv_group(const std::vector<int>& members,
                           const void* sendbuf,
                           const std::size_t* send_bytes,
                           const std::size_t* send_displs, void* recvbuf,
                           const std::size_t* recv_bytes,
                           const std::size_t* recv_displs);
  void alltoall_group(const std::vector<int>& members, const void* sendbuf,
                      void* recvbuf, std::size_t block_bytes);

  void barrier();
  void bcast(void* buf, std::size_t bytes, int root);
  double allreduce_sum(double value);
  double allreduce_max(double value);

  // --- instrumentation -------------------------------------------------
  std::uint64_t test_calls() const;      // test() invocations so far
  std::uint64_t messages_posted() const; // isend+irecv posts (incl. rounds)

 private:
  friend struct detail::ClusterImpl;
  friend class Cluster;
  Comm(detail::ClusterImpl* impl, detail::RankCtx* me)
      : impl_(impl), me_(me) {}
  detail::ClusterImpl* impl_;
  detail::RankCtx* me_;
};

// Outcome of one Cluster::run.
struct RunResult {
  std::vector<Seconds> rank_times;  // final virtual clock per rank
  Seconds makespan = 0.0;           // max over ranks
};

class Cluster {
 public:
  Cluster(int nranks, NetworkModel model);
  explicit Cluster(const Platform& platform)
      : Cluster(/*nranks=*/1, platform.net) {}
  Cluster(int nranks, const Platform& platform)
      : Cluster(nranks, platform.net) {}
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const;
  const NetworkModel& network() const;

  // Runs fn on every rank; virtual clocks start at zero each run.
  // Rethrows the first rank exception; throws DeadlockError on deadlock.
  RunResult run(const std::function<void(Comm&)>& fn);

 private:
  std::unique_ptr<detail::ClusterImpl> impl_;
};

}  // namespace offt::sim
