#include "sim/cluster.hpp"

#include <algorithm>
#include <sstream>

#include "sim/internal.hpp"
#include "util/check.hpp"

namespace offt::sim {

using detail::AbortSignal;
using detail::ClusterImpl;
using detail::Message;
using detail::MessagePtr;
using detail::MsgKey;
using detail::P2pState;
using detail::RankCtx;
using detail::RequestState;
using detail::SimCall;

namespace detail {

// ---------------------------------------------------------------------
// SimCall
// ---------------------------------------------------------------------

SimCall::SimCall(ClusterImpl& impl, RankCtx& me)
    : me_(me), lock_(impl.mu) {
  const Seconds cpu = util::thread_cpu_now();
  me.clock += (cpu - me.seg_start) * impl.net.compute_scale;
  impl.yield_to_min(me, lock_);
}

SimCall::~SimCall() { me_.seg_start = util::thread_cpu_now(); }

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

void ClusterImpl::schedule_next() {
  RankCtx* best = nullptr;
  for (auto& r : ranks) {
    if (r->st != RankCtx::St::Ready && r->st != RankCtx::St::WaitTime)
      continue;
    if (!best || r->effective_clock() < best->effective_clock()) best = r.get();
  }
  if (best) {
    if (best->st == RankCtx::St::WaitTime)
      best->clock = std::max(best->clock, best->wake);
    best->st = RankCtx::St::Active;
    best->cv.notify_one();
    return;
  }
  if (unfinished > 0 && !aborted) {
    // Every remaining rank is blocked on a message that no runnable rank
    // can ever complete.
    std::ostringstream os;
    os << "simulated deadlock: " << unfinished
       << " rank(s) blocked with no runnable peer;";
    for (auto& r : ranks) {
      if (r->st == RankCtx::St::WaitMatch) {
        os << " rank " << r->rank << " waiting on " << r->wait_set.size()
           << " request(s) at t=" << r->clock << ";";
      }
    }
    abort_run(std::make_exception_ptr(DeadlockError(os.str())));
  }
}

void ClusterImpl::yield_to_min(RankCtx& me, std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (aborted) throw AbortSignal{};
    RankCtx* smaller = nullptr;
    for (auto& r : ranks) {
      if (r.get() == &me) continue;
      if (r->st != RankCtx::St::Ready && r->st != RankCtx::St::WaitTime)
        continue;
      const Seconds ec = r->effective_clock();
      if (ec < me.clock || (ec == me.clock && r->rank < me.rank)) {
        smaller = r.get();
        break;
      }
    }
    if (!smaller) {
      me.st = RankCtx::St::Active;
      return;
    }
    me.st = RankCtx::St::Ready;
    schedule_next();
    me.cv.wait(lock, [&] {
      return me.st == RankCtx::St::Active || aborted;
    });
    if (aborted) throw AbortSignal{};
  }
}

void ClusterImpl::suspend_until(RankCtx& me, Seconds wake,
                                std::unique_lock<std::mutex>& lock) {
  me.st = RankCtx::St::WaitTime;
  me.wake = wake;
  schedule_next();
  me.cv.wait(lock,
             [&] { return me.st == RankCtx::St::Active || aborted; });
  if (aborted) throw AbortSignal{};
}

void ClusterImpl::suspend_match(RankCtx& me,
                                std::vector<RequestState*> wait_set,
                                std::unique_lock<std::mutex>& lock) {
  me.st = RankCtx::St::WaitMatch;
  me.wait_set = std::move(wait_set);
  schedule_next();
  me.cv.wait(lock,
             [&] { return me.st == RankCtx::St::Active || aborted; });
  me.wait_set.clear();
  if (aborted) throw AbortSignal{};
}

void ClusterImpl::reeval_waitmatch() {
  for (auto& r : ranks) {
    if (r->st != RankCtx::St::WaitMatch) continue;
    std::optional<Seconds> earliest;
    for (RequestState* s : r->wait_set) {
      if (s->done) {
        earliest = r->clock;
        break;
      }
      if (const auto ev = s->next_event()) {
        if (!earliest || *ev < *earliest) earliest = *ev;
      }
    }
    if (earliest) {
      r->st = RankCtx::St::WaitTime;
      r->wake = *earliest;
    }
  }
}

void ClusterImpl::abort_run(std::exception_ptr err) {
  if (!error) error = err;
  aborted = true;
  for (auto& r : ranks) r->cv.notify_all();
  done_cv.notify_all();
}

// ---------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------

void ClusterImpl::pair(Message& m) {
  const LinkParams& lp = net.link(m.src, m.dst);
  const Seconds wire = net.wire_time(m.bytes, m.src, m.dst, nranks);
  const Seconds start =
      std::max({m.send_post, m.recv_post, port_free[m.src]});
  port_free[m.src] = start + wire;
  m.completion = start + lp.alpha + wire;
  m.paired = true;
  if (m.bytes > 0) std::memcpy(m.dst_buf, m.src_buf, m.bytes);
  reeval_waitmatch();
}

MessagePtr ClusterImpl::post_send(RankCtx& me, const void* buf,
                                  std::size_t bytes, int dst, int tag) {
  me.clock += net.injection_overhead;
  ++me.post_count;
  const MsgKey key{me.rank, dst, tag};
  auto& recvq = pending_recv[key];
  MessagePtr m;
  if (!recvq.empty()) {
    m = recvq.front();
    recvq.pop_front();
    OFFT_DCHECK(m->bytes == bytes);
    m->src_buf = buf;
    m->send_post = me.clock;
    m->send_posted = true;
    pair(*m);
  } else {
    m = std::make_shared<Message>();
    m->src = me.rank;
    m->dst = dst;
    m->tag = tag;
    m->bytes = bytes;
    m->src_buf = buf;
    m->send_post = me.clock;
    m->send_posted = true;
    pending_send[key].push_back(m);
  }
  return m;
}

MessagePtr ClusterImpl::post_recv(RankCtx& me, void* buf, std::size_t bytes,
                                  int src, int tag) {
  me.clock += net.injection_overhead;
  ++me.post_count;
  const MsgKey key{src, me.rank, tag};
  auto& sendq = pending_send[key];
  MessagePtr m;
  if (!sendq.empty()) {
    m = sendq.front();
    sendq.pop_front();
    OFFT_DCHECK(m->bytes == bytes);
    m->dst_buf = buf;
    m->recv_post = me.clock;
    m->recv_posted = true;
    pair(*m);
  } else {
    m = std::make_shared<Message>();
    m->src = src;
    m->dst = me.rank;
    m->tag = tag;
    m->bytes = bytes;
    m->dst_buf = buf;
    m->recv_post = me.clock;
    m->recv_posted = true;
    pending_recv[key].push_back(m);
  }
  return m;
}

void ClusterImpl::progress_all(RankCtx& me) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < me.live.size(); ++i) {
    std::shared_ptr<RequestState> s = me.live[i].lock();
    if (!s) continue;  // handle dropped: prune
    s->progress(*this, me);
    if (!s->done) me.live[kept++] = std::move(me.live[i]);
  }
  me.live.resize(kept);
}

void ClusterImpl::wait_on(RankCtx& me, std::vector<RequestState*> targets,
                          std::unique_lock<std::mutex>& lock) {
  for (;;) {
    progress_all(me);
    bool all_done = true;
    for (RequestState* s : targets) all_done &= s->progress(*this, me);
    if (all_done) return;

    // The wake time considers every live request, not just the targets:
    // a blocking MPI call keeps the whole progress engine moving, so a
    // sibling collective's round completion is a reason to wake up and
    // post its next round.
    std::optional<Seconds> earliest;
    std::vector<RequestState*> pendings;
    auto consider = [&](RequestState* s) {
      if (s->done) return;
      pendings.push_back(s);
      if (const auto ev = s->next_event()) {
        if (!earliest || *ev < *earliest) earliest = *ev;
      }
    };
    for (const auto& weak : me.live) {
      if (const auto s = weak.lock()) consider(s.get());
    }
    for (RequestState* s : targets) {
      if (std::find(pendings.begin(), pendings.end(), s) == pendings.end())
        consider(s);
    }
    if (earliest) {
      suspend_until(me, *earliest, lock);
    } else {
      suspend_match(me, std::move(pendings), lock);
    }
  }
}

// ---------------------------------------------------------------------
// Request states
// ---------------------------------------------------------------------

bool P2pState::progress(ClusterImpl&, RankCtx& me) {
  if (!done && msg->complete_at(me.clock)) done = true;
  return done;
}

std::optional<Seconds> P2pState::next_event() const {
  if (done) return std::nullopt;
  if (msg->paired) return msg->completion;
  return std::nullopt;
}

}  // namespace detail

// ---------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------

bool Request::done() const { return !state_ || state_->done; }

// ---------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------

int Comm::rank() const { return me_->rank; }
int Comm::size() const { return impl_->nranks; }
const NetworkModel& Comm::network() const { return impl_->net; }

Seconds Comm::now() const {
  return me_->clock +
         (util::thread_cpu_now() - me_->seg_start) * impl_->net.compute_scale;
}

void Comm::advance(Seconds dt) {
  OFFT_CHECK_MSG(dt >= 0, "cannot advance virtual time backwards");
  SimCall call(*impl_, *me_);
  me_->clock += dt;
}

Request Comm::isend(const void* buf, std::size_t bytes, int dst, int tag) {
  OFFT_CHECK_MSG(dst >= 0 && dst < impl_->nranks, "invalid destination rank");
  OFFT_CHECK_MSG(tag >= 0 && tag < detail::kCollTagBase,
                 "user tags must be in [0, 2^30)");
  SimCall call(*impl_, *me_);
  auto st = std::make_shared<P2pState>();
  st->msg = impl_->post_send(*me_, buf, bytes, dst, tag);
  st->recv_side = false;
  me_->live.push_back(st);
  return Request(std::move(st));
}

Request Comm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  OFFT_CHECK_MSG(src >= 0 && src < impl_->nranks, "invalid source rank");
  OFFT_CHECK_MSG(tag >= 0 && tag < detail::kCollTagBase,
                 "user tags must be in [0, 2^30)");
  SimCall call(*impl_, *me_);
  auto st = std::make_shared<P2pState>();
  st->msg = impl_->post_recv(*me_, buf, bytes, src, tag);
  st->recv_side = true;
  me_->live.push_back(st);
  return Request(std::move(st));
}

void Comm::send(const void* buf, std::size_t bytes, int dst, int tag) {
  Request r = isend(buf, bytes, dst, tag);
  wait(r);
}

void Comm::recv(void* buf, std::size_t bytes, int src, int tag) {
  Request r = irecv(buf, bytes, src, tag);
  wait(r);
}

bool Comm::test(Request& req) {
  SimCall call(*impl_, *me_);
  me_->clock += impl_->net.test_overhead;
  ++me_->test_count;
  // Like MPI_Test, one poll drives the whole progress engine (§3.3): all
  // of this rank's outstanding operations advance, then the queried
  // request's status is returned.
  impl_->progress_all(*me_);
  if (!req.state_) return true;
  return req.state_->progress(*impl_, *me_);
}

void Comm::wait(Request& req) {
  if (!req.state_) return;
  SimCall call(*impl_, *me_);
  impl_->wait_on(*me_, {req.state_.get()}, call.lock());
}

void Comm::waitall(std::vector<Request>& reqs) {
  std::vector<RequestState*> states;
  states.reserve(reqs.size());
  for (Request& r : reqs)
    if (r.state_) states.push_back(r.state_.get());
  if (states.empty()) return;
  SimCall call(*impl_, *me_);
  impl_->wait_on(*me_, std::move(states), call.lock());
}

std::uint64_t Comm::test_calls() const { return me_->test_count; }
std::uint64_t Comm::messages_posted() const { return me_->post_count; }

// ---------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------

Cluster::Cluster(int nranks, NetworkModel model)
    : impl_(std::make_unique<ClusterImpl>()) {
  OFFT_CHECK_MSG(nranks >= 1, "cluster needs at least one rank");
  impl_->net = model;
  impl_->nranks = nranks;
}

Cluster::~Cluster() = default;

int Cluster::size() const { return impl_->nranks; }
const NetworkModel& Cluster::network() const { return impl_->net; }

RunResult Cluster::run(const std::function<void(Comm&)>& fn) {
  ClusterImpl& impl = *impl_;
  {
    std::lock_guard<std::mutex> guard(impl.mu);
    impl.ranks.clear();
    impl.pending_send.clear();
    impl.pending_recv.clear();
    impl.port_free.assign(impl.nranks, 0.0);
    impl.unfinished = impl.nranks;
    impl.aborted = false;
    impl.error = nullptr;
    for (int r = 0; r < impl.nranks; ++r) {
      auto ctx = std::make_unique<RankCtx>();
      ctx->rank = r;
      ctx->st = RankCtx::St::Ready;
      impl.ranks.push_back(std::move(ctx));
    }
  }

  for (int r = 0; r < impl.nranks; ++r) {
    RankCtx* me = impl.ranks[r].get();
    me->thread = std::thread([&impl, me, &fn] {
      {
        std::unique_lock<std::mutex> lock(impl.mu);
        me->cv.wait(lock, [&] {
          return me->st == RankCtx::St::Active || impl.aborted;
        });
        me->seg_start = util::thread_cpu_now();
      }
      bool clean = !impl.aborted;
      if (clean) {
        Comm comm(&impl, me);
        try {
          fn(comm);
        } catch (const AbortSignal&) {
          clean = false;
        } catch (...) {
          std::lock_guard<std::mutex> guard(impl.mu);
          impl.abort_run(std::current_exception());
          clean = false;
        }
      }
      std::lock_guard<std::mutex> guard(impl.mu);
      me->st = RankCtx::St::Finished;
      --impl.unfinished;
      if (impl.unfinished == 0) {
        impl.done_cv.notify_all();
      } else if (clean) {
        impl.schedule_next();
      }
    });
  }

  {
    std::unique_lock<std::mutex> lock(impl.mu);
    impl.schedule_next();
    impl.done_cv.wait(lock, [&] { return impl.unfinished == 0; });
  }
  for (auto& r : impl.ranks) r->thread.join();

  if (impl.error) std::rethrow_exception(impl.error);

  RunResult result;
  result.rank_times.reserve(impl.nranks);
  for (auto& r : impl.ranks) {
    result.rank_times.push_back(r->clock);
    result.makespan = std::max(result.makespan, r->clock);
  }
  return result;
}

}  // namespace offt::sim
