#include "sim/network.hpp"

#include "util/check.hpp"

namespace offt::sim {

Platform Platform::umd_cluster() {
  Platform p;
  p.name = "umd-cluster";
  // Myrinet 2000-era fabric, rescaled so that the communication :
  // overlappable-compute ratio at the benchmark sizes matches what the
  // paper measured on UMD-Cluster (~1.3x, Fig. 8a): this library's
  // single-core FFT kernels are roughly 10x faster per element than the
  // 2003-era Xeon, so the fabric is scaled up by a similar factor.
  p.net.inter = {10e-6, 650e6};
  p.net.intra = {10e-6, 650e6};
  p.net.ranks_per_node = 1;
  p.net.injection_overhead = 2e-6;
  p.net.test_overhead = 0.6e-6;
  p.net.congestion = 0.08;
  return p;
}

Platform Platform::hopper() {
  Platform p;
  p.name = "hopper";
  // Cray Gemini torus: ~1.5 us latency, multi-GB/s links; eight ranks share
  // a node, so a large share of all-to-all traffic stays on-node.
  p.net.inter = {1.8e-6, 3.0e9};
  p.net.intra = {0.6e-6, 8.0e9};
  p.net.ranks_per_node = 8;
  p.net.injection_overhead = 0.5e-6;
  p.net.test_overhead = 0.3e-6;
  p.net.congestion = 0.30;
  return p;
}

Platform Platform::ideal() {
  Platform p;
  p.name = "ideal";
  p.net.inter = {0.0, 1e18};
  p.net.intra = {0.0, 1e18};
  p.net.ranks_per_node = 1;
  p.net.injection_overhead = 0.0;
  p.net.test_overhead = 0.0;
  p.net.congestion = 0.0;
  return p;
}

Platform Platform::by_name(const std::string& name) {
  if (name == "umd" || name == "umd-cluster") return umd_cluster();
  if (name == "hopper") return hopper();
  if (name == "ideal") return ideal();
  OFFT_CHECK_MSG(false, "unknown platform '" << name
                                             << "' (umd|hopper|ideal)");
  return ideal();
}

}  // namespace offt::sim
