// Network performance model for the virtual-time cluster.
//
// Message timing follows a LogGP-flavoured alpha-beta model with
// rendezvous semantics and sender-port serialization:
//
//   start      = max(send_post, recv_post, sender_port_free)
//   wire       = bytes * gamma(p) / beta_link
//   port_free' = start + wire
//   completion = start + alpha_link + wire
//
// where the link is the intra-node one if both ranks live on the same
// node (`ranks_per_node`), and gamma(p) = 1 + congestion * log2(p) models
// the extra contention of dense all-to-all traffic on larger clusters.
// Posting a message charges `injection_overhead` to the posting rank and
// every test() charges `test_overhead` — the cost the paper's F*
// parameters trade against communication stalls (§3.3).
#pragma once

#include <cmath>
#include <cstddef>
#include <string>

#include "util/timer.hpp"

namespace offt::sim {

using util::Seconds;

struct LinkParams {
  Seconds alpha = 1e-6;   // per-message latency (seconds)
  double beta = 1e9;      // bandwidth (bytes/second)
};

struct NetworkModel {
  LinkParams inter{10e-6, 250e6};
  LinkParams intra{1e-6, 4e9};
  int ranks_per_node = 1;        // ranks sharing the intra-node link
  Seconds injection_overhead = 1e-6;  // charged per isend/irecv post
  Seconds test_overhead = 0.5e-6;     // charged per test() call
  double congestion = 0.0;            // gamma(p) = 1 + congestion*log2(p)
  double compute_scale = 1.0;  // virtual seconds charged per measured second

  bool same_node(int a, int b) const {
    return ranks_per_node > 1 && a / ranks_per_node == b / ranks_per_node;
  }

  const LinkParams& link(int a, int b) const {
    return same_node(a, b) ? intra : inter;
  }

  double gamma(int nranks) const {
    return nranks > 1
               ? 1.0 + congestion * std::log2(static_cast<double>(nranks))
               : 1.0;
  }

  Seconds wire_time(std::size_t bytes, int a, int b, int nranks) const {
    return static_cast<double>(bytes) * gamma(nranks) / link(a, b).beta;
  }
};

// A named machine: the network model calibrated to mimic one of the
// paper's two testbeds (§5.1), plus an ideal network for correctness
// tests.  The absolute constants are chosen so that, with this library's
// single-core compute speed, the compute:communication balance at the
// benchmark sizes lands in the same regime the paper reports
// (UMD-Cluster communication-heavy, Hopper communication-light); see
// EXPERIMENTS.md.
struct Platform {
  std::string name;
  NetworkModel net;

  // 64-node Linux cluster, one core per node, Myrinet 2000.
  static Platform umd_cluster();
  // Cray XE6, Gemini 3-D torus, 8 ranks per node.
  static Platform hopper();
  // Zero-cost network: messages complete as soon as both sides post.
  static Platform ideal();

  // Lookup by name ("umd", "umd-cluster", "hopper", "ideal").
  static Platform by_name(const std::string& name);
};

}  // namespace offt::sim
