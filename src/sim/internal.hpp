// Implementation details of the virtual-time cluster (see cluster.hpp for
// the execution model).  Shared between cluster.cpp and collectives.cpp;
// not part of the public API.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sim/cluster.hpp"

namespace offt::sim::detail {

// Internal signal used to unwind worker threads when the run aborts
// (deadlock or a rank exception).  Deliberately not derived from
// std::exception so user-level catch(const std::exception&) blocks do not
// swallow it.
struct AbortSignal {};

// One directed transfer.  Created when the first half (send or recv)
// posts; "paired" once both halves have posted, at which point the
// completion time is fixed and the payload is copied (rendezvous model —
// MPI forbids touching either buffer before completion anyway).
struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;
  std::size_t bytes = 0;
  const void* src_buf = nullptr;
  void* dst_buf = nullptr;
  Seconds send_post = 0;
  Seconds recv_post = 0;
  bool send_posted = false;
  bool recv_posted = false;
  bool paired = false;
  Seconds completion = 0;

  bool complete_at(Seconds t) const { return paired && completion <= t; }
};

using MessagePtr = std::shared_ptr<Message>;

struct RankCtx;
struct ClusterImpl;

// Base of every non-blocking operation.  progress() harvests completions
// with timestamp <= the owner's clock and may post follow-up messages
// (charging injection overhead to the owner); it is only ever called from
// the owning rank while that rank holds the global-minimum virtual clock.
struct RequestState {
  virtual ~RequestState() = default;

  bool done = false;

  virtual bool progress(ClusterImpl& impl, RankCtx& me) = 0;

  // Earliest virtual time at which progress() could advance further, or
  // nullopt if that time is not yet determined (waiting on a peer post).
  virtual std::optional<Seconds> next_event() const = 0;
};

struct P2pState final : RequestState {
  MessagePtr msg;
  bool recv_side = false;

  bool progress(ClusterImpl&, RankCtx& me) override;
  std::optional<Seconds> next_event() const override;
};

// LibNBC-style non-blocking all-to-all: m-1 pairwise rounds over the
// participating `members` (round r sends to the member r positions ahead,
// receives from r positions behind), exactly one round in flight, the
// next round posted only from the owner's test()/wait().  The global
// collective is the special case members == {0, ..., p-1}; group
// collectives (2-D decompositions) pass a subset.  Block arrays are
// indexed by member position.
struct AlltoallState final : RequestState {
  int owner = -1;
  std::vector<int> members;
  int my_pos = -1;  // owner's index within members
  int tag = 0;
  const std::byte* sendbuf = nullptr;
  std::byte* recvbuf = nullptr;
  std::vector<std::size_t> send_bytes, send_displs;
  std::vector<std::size_t> recv_bytes, recv_displs;

  int posted_round = 0;  // 0 = nothing in flight yet
  MessagePtr cur_send, cur_recv;

  void start(ClusterImpl& impl, RankCtx& me);
  bool progress(ClusterImpl& impl, RankCtx& me) override;
  std::optional<Seconds> next_event() const override;

 private:
  void post_round(ClusterImpl& impl, RankCtx& me, int round);
};

struct RankCtx {
  enum class St { Ready, Active, WaitTime, WaitMatch, Finished };

  // Live non-blocking operations owned by this rank.  Like a real MPI
  // progress engine, every test()/wait() advances ALL of them, not just
  // the handle passed (LibNBC rounds of sibling collectives move forward
  // during any poll).  Entries are pruned once done or abandoned.
  std::vector<std::weak_ptr<RequestState>> live;

  int rank = -1;
  Seconds clock = 0;
  St st = St::Ready;
  Seconds wake = 0;                          // valid when WaitTime
  std::vector<RequestState*> wait_set;       // valid when WaitMatch
  std::condition_variable cv;
  std::thread thread;

  Seconds seg_start = 0;  // thread CPU time when compute resumed
  std::uint64_t test_count = 0;
  std::uint64_t post_count = 0;
  std::uint64_t coll_seq = 0;  // collective instance counter (tag space)

  Seconds effective_clock() const {
    return st == St::WaitTime ? (clock > wake ? clock : wake) : clock;
  }
};

struct MsgKey {
  int src, dst, tag;
  auto operator<=>(const MsgKey&) const = default;
};

struct ClusterImpl {
  NetworkModel net;
  int nranks = 0;

  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<std::unique_ptr<RankCtx>> ranks;
  std::map<MsgKey, std::deque<MessagePtr>> pending_send, pending_recv;
  std::vector<Seconds> port_free;
  int unfinished = 0;
  bool aborted = false;
  std::exception_ptr error;

  // --- scheduler (all called with mu held) ---------------------------
  // Resumes the runnable rank with the smallest effective clock; detects
  // deadlock when nothing is runnable but ranks remain.
  void schedule_next();
  // Called by the active rank on entering a simulator call: lets every
  // runnable rank with a smaller clock run first.
  void yield_to_min(RankCtx& me, std::unique_lock<std::mutex>& lock);
  void suspend_until(RankCtx& me, Seconds wake,
                     std::unique_lock<std::mutex>& lock);
  void suspend_match(RankCtx& me, std::vector<RequestState*> wait_set,
                     std::unique_lock<std::mutex>& lock);
  // After a pairing: blocked ranks whose wait set now has a known event
  // become time-waiters.
  void reeval_waitmatch();
  void abort_run(std::exception_ptr err);

  // --- messaging (mu held, caller is the active, minimum-clock rank) --
  MessagePtr post_send(RankCtx& me, const void* buf, std::size_t bytes,
                       int dst, int tag);
  MessagePtr post_recv(RankCtx& me, void* buf, std::size_t bytes, int src,
                       int tag);
  void pair(Message& m);

  // Advances every live request of `me` (the global progress engine).
  void progress_all(RankCtx& me);

  // Shared body of wait()/waitall(): blocks until every target is done,
  // progressing the whole engine at each step like a blocking MPI call.
  void wait_on(RankCtx& me, std::vector<RequestState*> targets,
               std::unique_lock<std::mutex>& lock);
};

// RAII bracket around every simulator call: charges the compute measured
// since the last call to the rank's virtual clock, then enforces the
// minimum-clock execution order.
class SimCall {
 public:
  SimCall(ClusterImpl& impl, RankCtx& me);
  ~SimCall();

  std::unique_lock<std::mutex>& lock() { return lock_; }

  SimCall(const SimCall&) = delete;
  SimCall& operator=(const SimCall&) = delete;

 private:
  RankCtx& me_;
  std::unique_lock<std::mutex> lock_;
};

// Tag space: user point-to-point tags live below kCollTagBase; collective
// instances allocate tags above it from the per-rank sequence counter
// (all ranks call collectives in the same order, so counters agree).
inline constexpr int kCollTagBase = 1 << 30;

inline int make_coll_tag(RankCtx& me) {
  return kCollTagBase + static_cast<int>(me.coll_seq++ & 0x3fffffff);
}

}  // namespace offt::sim::detail
