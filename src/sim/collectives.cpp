// Collective operations: non-blocking all-to-all(v) with the LibNBC-style
// round schedule, plus the small blocking collectives (barrier, bcast,
// allreduce) the harness needs.
#include <algorithm>

#include "sim/internal.hpp"
#include "util/check.hpp"

namespace offt::sim {

using detail::AlltoallState;
using detail::ClusterImpl;
using detail::P2pState;
using detail::RankCtx;
using detail::RequestState;
using detail::SimCall;

namespace detail {

void AlltoallState::post_round(ClusterImpl& impl, RankCtx& me, int round) {
  const int m = static_cast<int>(members.size());
  const std::size_t dst_pos = static_cast<std::size_t>((my_pos + round) % m);
  const std::size_t src_pos =
      static_cast<std::size_t>((my_pos - round + m) % m);
  cur_send = impl.post_send(me, sendbuf + send_displs[dst_pos],
                            send_bytes[dst_pos], members[dst_pos], tag);
  cur_recv = impl.post_recv(me, recvbuf + recv_displs[src_pos],
                            recv_bytes[src_pos], members[src_pos], tag);
  posted_round = round;
}

void AlltoallState::start(ClusterImpl& impl, RankCtx& me) {
  const auto self = static_cast<std::size_t>(my_pos);
  // The block addressed to ourselves never touches the network.
  if (send_bytes[self] > 0) {
    OFFT_CHECK_MSG(send_bytes[self] == recv_bytes[self],
                   "alltoall self block size mismatch");
    std::memmove(recvbuf + recv_displs[self], sendbuf + send_displs[self],
                 send_bytes[self]);
  }
  if (members.size() == 1) {
    done = true;
    return;
  }
  post_round(impl, me, 1);
}

bool AlltoallState::progress(ClusterImpl& impl, RankCtx& me) {
  if (done) return true;
  for (;;) {
    if (!cur_send->complete_at(me.clock) || !cur_recv->complete_at(me.clock))
      return false;
    if (posted_round + 1 >= static_cast<int>(members.size())) {
      done = true;
      return true;
    }
    // Manual progression: the next pairwise round is posted *now*, at the
    // moment of this test()/wait() call — a rank that polls rarely stalls
    // its own (and its peers') schedule (§3.3 of the paper).
    post_round(impl, me, posted_round + 1);
  }
}

std::optional<Seconds> AlltoallState::next_event() const {
  if (done) return std::nullopt;
  if (!cur_send->paired || !cur_recv->paired) return std::nullopt;
  return std::max(cur_send->completion, cur_recv->completion);
}

}  // namespace detail

Request Comm::ialltoall(const void* sendbuf, void* recvbuf,
                        std::size_t block_bytes) {
  const int p = impl_->nranks;
  std::vector<std::size_t> bytes(p, block_bytes);
  std::vector<std::size_t> displs(p);
  for (int r = 0; r < p; ++r) displs[r] = static_cast<std::size_t>(r) * block_bytes;
  return ialltoallv(sendbuf, bytes.data(), displs.data(), recvbuf,
                    bytes.data(), displs.data());
}

Request Comm::ialltoallv(const void* sendbuf, const std::size_t* send_bytes,
                         const std::size_t* send_displs, void* recvbuf,
                         const std::size_t* recv_bytes,
                         const std::size_t* recv_displs) {
  std::vector<int> everyone(static_cast<std::size_t>(impl_->nranks));
  for (int r = 0; r < impl_->nranks; ++r)
    everyone[static_cast<std::size_t>(r)] = r;
  return ialltoallv_group(everyone, sendbuf, send_bytes, send_displs,
                          recvbuf, recv_bytes, recv_displs);
}

Request Comm::ialltoallv_group(const std::vector<int>& members,
                               const void* sendbuf,
                               const std::size_t* send_bytes,
                               const std::size_t* send_displs, void* recvbuf,
                               const std::size_t* recv_bytes,
                               const std::size_t* recv_displs) {
  OFFT_CHECK_MSG(!members.empty(), "group collective needs members");
  const std::size_t m = members.size();
  auto st = std::make_shared<AlltoallState>();
  st->owner = me_->rank;
  st->members = members;
  st->my_pos = -1;
  for (std::size_t i = 0; i < m; ++i) {
    OFFT_CHECK_MSG(members[i] >= 0 && members[i] < impl_->nranks,
                   "group member out of range");
    if (members[i] == me_->rank) st->my_pos = static_cast<int>(i);
  }
  OFFT_CHECK_MSG(st->my_pos >= 0,
                 "calling rank is not a member of the collective group");
  st->tag = detail::make_coll_tag(*me_);
  st->sendbuf = static_cast<const std::byte*>(sendbuf);
  st->recvbuf = static_cast<std::byte*>(recvbuf);
  st->send_bytes.assign(send_bytes, send_bytes + m);
  st->send_displs.assign(send_displs, send_displs + m);
  st->recv_bytes.assign(recv_bytes, recv_bytes + m);
  st->recv_displs.assign(recv_displs, recv_displs + m);

  SimCall call(*impl_, *me_);
  st->start(*impl_, *me_);
  me_->live.push_back(st);
  return Request(std::move(st));
}

void Comm::alltoall_group(const std::vector<int>& members,
                          const void* sendbuf, void* recvbuf,
                          std::size_t block_bytes) {
  const std::size_t m = members.size();
  std::vector<std::size_t> bytes(m, block_bytes), displs(m);
  for (std::size_t i = 0; i < m; ++i) displs[i] = i * block_bytes;
  Request req = ialltoallv_group(members, sendbuf, bytes.data(),
                                 displs.data(), recvbuf, bytes.data(),
                                 displs.data());
  wait(req);
}

void Comm::alltoall(const void* sendbuf, void* recvbuf,
                    std::size_t block_bytes) {
  Request r = ialltoall(sendbuf, recvbuf, block_bytes);
  wait(r);
}

void Comm::barrier() {
  const int p = impl_->nranks;
  if (p == 1) return;
  const int tag = detail::make_coll_tag(*me_);
  const int rank = me_->rank;
  // Dissemination barrier: log2(p) rounds of zero-byte exchanges.
  for (int k = 1; k < p; k <<= 1) {
    SimCall call(*impl_, *me_);
    auto s = std::make_shared<P2pState>();
    s->msg = impl_->post_send(*me_, nullptr, 0, (rank + k) % p, tag);
    auto r = std::make_shared<P2pState>();
    r->msg = impl_->post_recv(*me_, nullptr, 0, (rank - k % p + p) % p, tag);
    impl_->wait_on(*me_, {s.get(), r.get()}, call.lock());
  }
}

void Comm::bcast(void* buf, std::size_t bytes, int root) {
  const int p = impl_->nranks;
  OFFT_CHECK_MSG(root >= 0 && root < p, "invalid bcast root");
  if (p == 1) return;
  const int tag = detail::make_coll_tag(*me_);
  const int vrank = (me_->rank - root + p) % p;

  // Binomial tree.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % p;
      SimCall call(*impl_, *me_);
      auto r = std::make_shared<P2pState>();
      r->msg = impl_->post_recv(*me_, buf, bytes, src, tag);
      impl_->wait_on(*me_, {r.get()}, call.lock());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int dst = (vrank + mask + root) % p;
      SimCall call(*impl_, *me_);
      auto s = std::make_shared<P2pState>();
      s->msg = impl_->post_send(*me_, buf, bytes, dst, tag);
      impl_->wait_on(*me_, {s.get()}, call.lock());
    }
    mask >>= 1;
  }
}

namespace {

template <typename Op>
double allreduce_impl(detail::ClusterImpl* impl, detail::RankCtx* me,
                      Comm& comm, double value, Op op) {
  const int p = impl->nranks;
  if (p > 1) {
    const int tag = detail::make_coll_tag(*me);
    if (me->rank == 0) {
      for (int src = 1; src < p; ++src) {
        double incoming = 0.0;
        SimCall call(*impl, *me);
        auto r = std::make_shared<P2pState>();
        r->msg = impl->post_recv(*me, &incoming, sizeof(double), src, tag);
        impl->wait_on(*me, {r.get()}, call.lock());
        value = op(value, incoming);
      }
    } else {
      SimCall call(*impl, *me);
      auto s = std::make_shared<P2pState>();
      s->msg = impl->post_send(*me, &value, sizeof(double), 0, tag);
      impl->wait_on(*me, {s.get()}, call.lock());
    }
    comm.bcast(&value, sizeof(double), 0);
  }
  return value;
}

}  // namespace

double Comm::allreduce_sum(double value) {
  return allreduce_impl(impl_, me_, *this, value,
                        [](double a, double b) { return a + b; });
}

double Comm::allreduce_max(double value) {
  return allreduce_impl(impl_, me_, *this, value,
                        [](double a, double b) { return std::max(a, b); });
}

}  // namespace offt::sim
