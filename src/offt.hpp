// Umbrella header: pulls in the whole public API.
//
//   #include "offt.hpp"
//
//   offt::core::Plan3d        — the overlapped parallel 3-D FFT
//   offt::core::tune_fft3d    — auto-tuning of its ten parameters
//   offt::core::DistributedField — slab container for examples/tests
//   offt::sim::Cluster        — the virtual-time cluster it runs on
//   offt::fft::Plan1d         — the serial FFT substrate
//   offt::tune::NelderMead    — the generic auto-tuner
#pragma once

#include "core/fft_tuner.hpp"
#include "core/plan3d.hpp"
#include "fft/plan1d.hpp"
#include "fft/planner.hpp"
#include "fft/reference.hpp"
#include "fft/transpose.hpp"
#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "tune/tuner.hpp"
